(* Tests for the Prolog engine: terms, substitutions, unification, lexer,
   parser, database, SLD resolution, and OR-parallel execution. *)

let check = Alcotest.check

let term = Alcotest.testable Term.pp Term.equal

(* ---------------- Term ---------------- *)

let test_term_constructors () =
  check term "compound of nothing collapses" (Term.Atom "f") (Term.compound "f" []);
  check term "list round trip"
    (Term.of_list [ Term.Int 1; Term.Int 2 ])
    (Term.cons (Term.Int 1) (Term.cons (Term.Int 2) Term.nil))

let test_term_to_list () =
  let l = Term.of_list [ Term.Atom "a"; Term.Atom "b" ] in
  check Alcotest.bool "proper list" true
    (Term.to_list l = Some [ Term.Atom "a"; Term.Atom "b" ]);
  check Alcotest.bool "improper list" true
    (Term.to_list (Term.cons (Term.Atom "a") (Term.Var 0)) = None);
  check Alcotest.bool "non-list" true (Term.to_list (Term.Int 3) = None)

let test_term_functor_vars () =
  let t = Term.compound "f" [ Term.Var 2; Term.compound "g" [ Term.Var 0; Term.Var 2 ] ] in
  check Alcotest.bool "functor" true (Term.functor_of t = Some ("f", 2));
  check Alcotest.(list int) "vars in first-occurrence order" [ 2; 0 ] (Term.vars t);
  check Alcotest.int "max var" 2 (Term.max_var t);
  check Alcotest.int "max var of ground" (-1) (Term.max_var (Term.Atom "x"))

let test_term_rename () =
  let t = Term.compound "f" [ Term.Var 0; Term.Int 5 ] in
  check term "renamed" (Term.compound "f" [ Term.Var 10; Term.Int 5 ])
    (Term.rename ~offset:10 t)

let test_term_printing () =
  check Alcotest.string "list syntax" "[1, 2, 3]"
    (Term.to_string (Term.of_list [ Term.Int 1; Term.Int 2; Term.Int 3 ]));
  check Alcotest.string "operator syntax" "_0 = 3"
    (Term.to_string (Term.compound "=" [ Term.Var 0; Term.Int 3 ]));
  check Alcotest.string "compound" "f(a, _1)"
    (Term.to_string (Term.compound "f" [ Term.Atom "a"; Term.Var 1 ]));
  check Alcotest.string "partial list" "[a|_0]"
    (Term.to_string (Term.cons (Term.Atom "a") (Term.Var 0)))

(* ---------------- Subst ---------------- *)

let test_subst_walk_resolve () =
  let s = Subst.bind Subst.empty 0 (Term.Var 1) in
  let s = Subst.bind s 1 (Term.Atom "x") in
  check term "walk chases chains" (Term.Atom "x") (Subst.walk s (Term.Var 0));
  let t = Term.compound "f" [ Term.Var 0; Term.Var 2 ] in
  check term "resolve is deep" (Term.compound "f" [ Term.Atom "x"; Term.Var 2 ])
    (Subst.resolve s t)

let test_subst_double_bind () =
  let s = Subst.bind Subst.empty 0 (Term.Atom "a") in
  Alcotest.check_raises "no rebinding"
    (Invalid_argument "Subst.bind: variable already bound") (fun () ->
      ignore (Subst.bind s 0 (Term.Atom "b")))

let test_subst_restrict () =
  let s = Subst.bind Subst.empty 0 (Term.Int 1) in
  check Alcotest.bool "bound reported, unbound omitted" true
    (Subst.restrict s ~vars:[ 0; 1 ] = [ (0, Term.Int 1) ])

(* ---------------- Unify ---------------- *)

let test_unify_basics () =
  let u a b = Unify.unify Subst.empty a b in
  check Alcotest.bool "atoms equal" true (u (Term.Atom "a") (Term.Atom "a") <> None);
  check Alcotest.bool "atoms differ" true (u (Term.Atom "a") (Term.Atom "b") = None);
  check Alcotest.bool "ints" true (u (Term.Int 1) (Term.Int 1) <> None);
  check Alcotest.bool "int/atom clash" true (u (Term.Int 1) (Term.Atom "1") = None);
  check Alcotest.bool "arity clash" true
    (u (Term.compound "f" [ Term.Int 1 ]) (Term.compound "f" [ Term.Int 1; Term.Int 2 ])
     = None)

let test_unify_binding () =
  match Unify.unify Subst.empty (Term.Var 0) (Term.Atom "hello") with
  | Some s -> check term "bound" (Term.Atom "hello") (Subst.walk s (Term.Var 0))
  | None -> Alcotest.fail "should unify"

let test_unify_structural () =
  let a = Term.compound "f" [ Term.Var 0; Term.Atom "b" ] in
  let b = Term.compound "f" [ Term.Atom "a"; Term.Var 1 ] in
  match Unify.unify Subst.empty a b with
  | Some s ->
    check term "x bound" (Term.Atom "a") (Subst.walk s (Term.Var 0));
    check term "y bound" (Term.Atom "b") (Subst.walk s (Term.Var 1))
  | None -> Alcotest.fail "should unify"

let test_unify_occurs_check () =
  let x = Term.Var 0 in
  let fx = Term.compound "f" [ x ] in
  check Alcotest.bool "without check, cyclic binding accepted" true
    (Unify.unify Subst.empty x fx <> None);
  check Alcotest.bool "with check, rejected" true
    (Unify.unify ~occurs_check:true Subst.empty x fx = None);
  check Alcotest.bool "occurs" true (Unify.occurs Subst.empty 0 fx)

let test_unify_arrays_length () =
  check Alcotest.bool "length mismatch" true
    (Unify.unify_arrays Subst.empty [| Term.Int 1 |] [||] = None)

(* Random ground-able term pairs: if unification succeeds, applying the
   unifier to both sides must give equal terms. *)
let gen_term =
  let open QCheck.Gen in
  sized (fun n ->
      fix
        (fun self n ->
          if n <= 0 then
            oneof
              [
                map (fun i -> Term.Var (i mod 4)) small_nat;
                map (fun i -> Term.Int (i mod 10)) small_nat;
                oneofl [ Term.Atom "a"; Term.Atom "b"; Term.Atom "c" ];
              ]
          else
            frequency
              [
                (2, map (fun i -> Term.Var (i mod 4)) small_nat);
                (2, oneofl [ Term.Atom "a"; Term.Atom "b" ]);
                ( 3,
                  map2
                    (fun f args -> Term.compound f args)
                    (oneofl [ "f"; "g" ])
                    (list_size (int_range 1 3) (self (n / 2))) );
              ])
        (min n 6))

let arb_term = QCheck.make ~print:Term.to_string gen_term

let prop_unify_sound =
  QCheck.Test.make ~name:"unifier makes both sides equal" ~count:500
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      match Unify.unify ~occurs_check:true Subst.empty a b with
      | None -> true
      | Some s -> Term.equal (Subst.resolve s a) (Subst.resolve s b))

let prop_unify_symmetric =
  QCheck.Test.make ~name:"unifiability is symmetric" ~count:500
    (QCheck.pair arb_term arb_term) (fun (a, b) ->
      Unify.unify ~occurs_check:true Subst.empty a b <> None
      = (Unify.unify ~occurs_check:true Subst.empty b a <> None))

let prop_unify_reflexive =
  QCheck.Test.make ~name:"every term unifies with itself" ~count:300 arb_term
    (fun a -> Unify.unify Subst.empty a a <> None)

(* ---------------- Lexer ---------------- *)

let test_lexer_tokens () =
  check Alcotest.bool "mix" true
    (Lexer.tokens "foo(Bar, 42) :- baz."
    = [
        Lexer.Atom "foo"; Lexer.Punct "("; Lexer.Variable "Bar"; Lexer.Punct ",";
        Lexer.Integer 42; Lexer.Punct ")"; Lexer.Punct ":-"; Lexer.Atom "baz";
        Lexer.Dot; Lexer.Eof;
      ])

let test_lexer_comments () =
  check Alcotest.bool "line and block comments" true
    (Lexer.tokens "a. % comment\n/* block\ncomment */ b."
    = [ Lexer.Atom "a"; Lexer.Dot; Lexer.Atom "b"; Lexer.Dot; Lexer.Eof ])

let test_lexer_quoted () =
  check Alcotest.bool "quoted atom with space" true
    (Lexer.tokens "'hello world'." = [ Lexer.Atom "hello world"; Lexer.Dot; Lexer.Eof ]);
  check Alcotest.bool "escaped quote" true
    (Lexer.tokens "'it''s'." = [ Lexer.Atom "it's"; Lexer.Dot; Lexer.Eof ])

let test_lexer_symbolic_vs_dot () =
  check Alcotest.bool "=.. style runs" true
    (Lexer.tokens "X = Y." = [ Lexer.Variable "X"; Lexer.Punct "="; Lexer.Variable "Y";
                               Lexer.Dot; Lexer.Eof ]);
  check Alcotest.bool "dot inside symbols" true
    (List.mem (Lexer.Punct ":-") (Lexer.tokens ":- a."))

let test_lexer_errors () =
  (try
     ignore (Lexer.tokens "'unterminated");
     Alcotest.fail "should raise"
   with Lexer.Lex_error _ -> ());
  try
    ignore (Lexer.tokens "a. /* open");
    Alcotest.fail "should raise"
  with Lexer.Lex_error _ -> ()

(* ---------------- Parser ---------------- *)

let test_parser_fact_and_rule () =
  (match Parser.program "f(a). g(X) :- f(X)." with
  | [ Parser.Clause { head = h1; body = None };
      Parser.Clause { head = h2; body = Some b2 } ] ->
    check term "fact head" (Term.compound "f" [ Term.Atom "a" ]) h1;
    check term "rule head" (Term.compound "g" [ Term.Var 0 ]) h2;
    check term "rule body" (Term.compound "f" [ Term.Var 0 ]) b2
  | _ -> Alcotest.fail "unexpected parse")

let test_parser_operators_precedence () =
  let c = Parser.clause_of_string "r(X) :- X is 1 + 2 * 3." in
  match c.Parser.body with
  | Some (Term.Compound ("is", [| _; rhs |])) ->
    check term "* binds tighter than +"
      (Term.compound "+" [ Term.Int 1; Term.compound "*" [ Term.Int 2; Term.Int 3 ] ])
      rhs
  | _ -> Alcotest.fail "bad body"

let test_parser_left_assoc () =
  let goal, _ = Parser.query "X is 10 - 3 - 2" in
  match goal with
  | Term.Compound ("is", [| _; rhs |]) ->
    check term "left associative"
      (Term.compound "-" [ Term.compound "-" [ Term.Int 10; Term.Int 3 ]; Term.Int 2 ])
      rhs
  | _ -> Alcotest.fail "bad goal"

let test_parser_lists () =
  let goal, _ = Parser.query "member(X, [a, b|T])" in
  match goal with
  | Term.Compound ("member", [| _; l |]) ->
    check term "list with tail"
      (Term.cons (Term.Atom "a") (Term.cons (Term.Atom "b") (Term.Var 1)))
      l
  | _ -> Alcotest.fail "bad list"

let test_parser_conjunction_structure () =
  let goal, _ = Parser.query "a, b, c" in
  check term "right-nested conjunction"
    (Term.compound "," [ Term.Atom "a"; Term.compound "," [ Term.Atom "b"; Term.Atom "c" ] ])
    goal

let test_parser_var_scoping () =
  let goal, names = Parser.query "f(X, Y, X)" in
  (match goal with
  | Term.Compound ("f", [| Term.Var a; Term.Var b; Term.Var c |]) ->
    check Alcotest.bool "same name, same var" true (a = c);
    check Alcotest.bool "distinct names distinct" true (a <> b)
  | _ -> Alcotest.fail "bad goal");
  check Alcotest.int "two named vars" 2 (List.length names)

let test_parser_underscore_fresh () =
  let goal, _ = Parser.query "f(_, _)" in
  match goal with
  | Term.Compound ("f", [| Term.Var a; Term.Var b |]) ->
    check Alcotest.bool "underscores are fresh" true (a <> b)
  | _ -> Alcotest.fail "bad goal"

let test_parser_negative_int () =
  let goal, _ = Parser.query "f(-3)" in
  check term "folded" (Term.compound "f" [ Term.Int (-3) ]) goal

let test_parser_errors () =
  (try
     ignore (Parser.program "f(a");
     Alcotest.fail "should raise"
   with Parser.Parse_error _ -> ());
  try
    ignore (Parser.program "f(a) g(b).");
    Alcotest.fail "should raise"
  with Parser.Parse_error _ -> ()

(* ---------------- Database ---------------- *)

let test_database_add_and_lookup () =
  let db = Database.create () in
  ignore (Database.add_program db "f(a). f(b). g(X) :- f(X).");
  check Alcotest.int "count" 3 (Database.clause_count db);
  check Alcotest.int "f/1 clauses" 2 (List.length (Database.clauses db ~name:"f" ~arity:1));
  check Alcotest.int "unknown" 0 (List.length (Database.clauses db ~name:"h" ~arity:2));
  check Alcotest.bool "predicates" true
    (Database.predicates db = [ ("f", 1); ("g", 1) ])

let test_database_rejects_bad_head () =
  let db = Database.create () in
  Alcotest.check_raises "var head"
    (Invalid_argument "Database.add: clause head must be callable") (fun () ->
      Database.add db { Parser.head = Term.Var 0; body = None })

let test_database_directives_returned () =
  let db = Database.create () in
  let goals = Database.add_program db "f(a). ?- f(X). f(b)." in
  check Alcotest.int "one directive" 1 (List.length goals);
  check Alcotest.int "two clauses" 2 (Database.clause_count db)

let test_database_prelude_loads () =
  let db = Database.with_prelude () in
  check Alcotest.bool "append defined" true
    (List.length (Database.clauses db ~name:"append" ~arity:3) = 2)

(* ---------------- Solve ---------------- *)

let solutions db q =
  match Solve.query db q with
  | Ok sols -> sols
  | Error m -> Alcotest.failf "query %S failed: %s" q m

let first_binding db q name =
  match solutions db q with
  | sol :: _ -> List.assoc_opt name sol
  | [] -> None

let test_solve_facts_and_backtracking () =
  let db = Database.create () in
  ignore (Database.add_program db "color(red). color(green). color(blue).");
  let sols = solutions db "color(X)" in
  check Alcotest.int "three solutions" 3 (List.length sols);
  check Alcotest.bool "in clause order" true
    (List.map (fun s -> List.assoc "X" s) sols
     = [ Term.Atom "red"; Term.Atom "green"; Term.Atom "blue" ])

let test_solve_family_tree () =
  let db = Database.create () in
  ignore
    (Database.add_program db
       "parent(tom, bob). parent(tom, liz). parent(bob, ann). parent(bob, pat).
        grandparent(X, Z) :- parent(X, Y), parent(Y, Z).
        sibling(X, Y) :- parent(P, X), parent(P, Y), X \\= Y.");
  check Alcotest.int "tom's grandchildren" 2
    (List.length (solutions db "grandparent(tom, W)"));
  check Alcotest.bool "ann and pat are siblings" true
    (solutions db "sibling(ann, pat)" <> []);
  check Alcotest.bool "ann not sibling of self" true
    (solutions db "sibling(ann, ann)" = [])

let test_solve_prelude_append () =
  let db = Database.with_prelude () in
  check Alcotest.int "4 splits of a 3-list" 4
    (List.length (solutions db "append(X, Y, [1,2,3])"));
  check Alcotest.bool "append concatenates" true
    (first_binding db "append([1,2], [3], Z)" "Z"
     = Some (Term.of_list [ Term.Int 1; Term.Int 2; Term.Int 3 ]))

let test_solve_arithmetic () =
  let db = Database.with_prelude () in
  check Alcotest.bool "is" true (first_binding db "X is 2 * 21" "X" = Some (Term.Int 42));
  check Alcotest.bool "mod follows divisor sign" true
    (first_binding db "X is -7 mod 3" "X" = Some (Term.Int 2));
  check Alcotest.bool "comparison true" true (solutions db "3 < 5" <> []);
  check Alcotest.bool "comparison false" true (solutions db "5 =< 3" = []);
  check Alcotest.bool "=:=" true (solutions db "2 + 2 =:= 4" <> [])

let test_solve_arith_errors () =
  let db = Database.with_prelude () in
  (match Solve.query db "X is Y + 1" with
  | Error m -> check Alcotest.bool "instantiation error" true
                 (String.length m > 0)
  | Ok _ -> Alcotest.fail "unbound arithmetic must error");
  match Solve.query db "X is 1 / 0" with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "division by zero must error"

let test_solve_unification_builtins () =
  let db = Database.with_prelude () in
  check Alcotest.bool "=" true (first_binding db "X = f(1)" "X"
                                = Some (Term.compound "f" [ Term.Int 1 ]));
  check Alcotest.bool "\\= fails on unifiable" true (solutions db "f(X) \\= f(1)" = []);
  check Alcotest.bool "\\= succeeds on clash" true (solutions db "a \\= b" <> []);
  check Alcotest.bool "== structural" true (solutions db "f(a) == f(a)" <> []);
  check Alcotest.bool "== distinguishes unbound" true (solutions db "X == Y" = [])

let test_solve_type_tests () =
  let db = Database.with_prelude () in
  check Alcotest.bool "var" true (solutions db "var(X)" <> []);
  check Alcotest.bool "nonvar" true (solutions db "nonvar(f(X))" <> []);
  check Alcotest.bool "atom" true (solutions db "atom(foo)" <> []);
  check Alcotest.bool "integer" true (solutions db "integer(3)" <> []);
  check Alcotest.bool "atom(3) fails" true (solutions db "atom(3)" = [])

let test_solve_cut () =
  let db = Database.create () in
  ignore
    (Database.add_program db
       "first([X|_], X) :- !. first(_, none).
        maxc(X, Y, X) :- X >= Y, !. maxc(_, Y, Y).");
  let sols = solutions db "first([a,b], W)" in
  check Alcotest.int "cut prunes second clause" 1 (List.length sols);
  check Alcotest.bool "cut committed to first" true
    (List.assoc "W" (List.hd sols) = Term.Atom "a");
  check Alcotest.bool "maxc" true (first_binding db "maxc(3, 7, M)" "M" = Some (Term.Int 7))

let test_solve_if_then_else () =
  let db = Database.create () in
  ignore (Database.add_program db "classify(X, neg) :- (X < 0 -> true ; fail).
                                   classify(X, nonneg) :- (X < 0 -> fail ; true).");
  check Alcotest.bool "then branch" true
    (first_binding db "classify(-1, C)" "C" = Some (Term.Atom "neg"));
  check Alcotest.bool "else branch" true
    (first_binding db "classify(4, C)" "C" = Some (Term.Atom "nonneg"))

let test_solve_negation_as_failure () =
  let db = Database.with_prelude () in
  check Alcotest.bool "not of failure" true
    (solutions db "not(member(z, [a,b]))" <> []);
  check Alcotest.bool "not of success" true
    (solutions db "not(member(a, [a,b]))" = [])

let test_solve_disjunction () =
  let db = Database.create () in
  ignore (Database.add_program db "d(X) :- X = 1 ; X = 2.");
  check Alcotest.int "both disjuncts" 2 (List.length (solutions db "d(X)"))

let contains_substring s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

let test_solve_unknown_predicate () =
  let db = Database.create () in
  match Solve.query db "nonexistent(X)" with
  | Error m ->
    check Alcotest.bool "mentions the predicate" true
      (contains_substring m "nonexistent")
  | Ok _ -> Alcotest.fail "unknown predicates must error"

let test_solve_depth_limit () =
  let db = Database.create () in
  ignore (Database.add_program db "loop :- loop.");
  let goal, _ = Parser.query "loop" in
  let r = Solve.run ~max_depth:100 db goal in
  check Alcotest.bool "no solutions" true (r.Solve.solutions = []);
  check Alcotest.bool "depth flag set" true r.Solve.depth_exceeded

let test_solve_max_solutions () =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "between(1, 1000, X)" in
  let r = Solve.run ~max_solutions:5 db goal in
  check Alcotest.int "early stop" 5 (List.length r.Solve.solutions)

let test_solve_inference_counting () =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "append([1,2,3], [4], Z)" in
  let short = (Solve.run ~max_solutions:1 db goal).Solve.inferences in
  let goal2, _ = Parser.query "append([1,2,3,4,5,6], [7], Z)" in
  let long = (Solve.run ~max_solutions:1 db goal2).Solve.inferences in
  check Alcotest.bool "work grows with input" true (long > short);
  check Alcotest.bool "positive" true (short > 0)

let test_solve_succeeds_first () =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "member(b, [a, b, c])" in
  check Alcotest.bool "succeeds" true (Solve.succeeds db goal);
  check Alcotest.bool "first returns bindings" true (Solve.first db goal = Some []);
  let goal2, _ = Parser.query "member(z, [a])" in
  check Alcotest.bool "fails" false (Solve.succeeds db goal2)

(* ---------------- findall / forall / \+ ---------------- *)

let test_findall_collects_in_order () =
  let db = Database.with_prelude () in
  ignore (Database.add_program db "col(r). col(g). col(b).");
  check Alcotest.bool "findall list" true
    (first_binding db "findall(X, col(X), L)" "L"
     = Some (Term.of_list [ Term.Atom "r"; Term.Atom "g"; Term.Atom "b" ]))

let test_findall_empty_on_failure () =
  let db = Database.with_prelude () in
  check Alcotest.bool "empty list" true
    (first_binding db "findall(X, member(X, []), L)" "L" = Some Term.nil)

let test_findall_with_template () =
  let db = Database.with_prelude () in
  check Alcotest.bool "templates resolved per solution" true
    (first_binding db "findall(p(X), member(X, [1,2]), L)" "L"
     = Some
         (Term.of_list
            [ Term.compound "p" [ Term.Int 1 ]; Term.compound "p" [ Term.Int 2 ] ]))

let test_forall () =
  let db = Database.with_prelude () in
  check Alcotest.bool "all evens" true
    (solutions db "forall(member(X, [2,4,6]), X mod 2 =:= 0)" <> []);
  check Alcotest.bool "counterexample fails" true
    (solutions db "forall(member(X, [2,3]), X mod 2 =:= 0)" = []);
  check Alcotest.bool "vacuous truth" true
    (solutions db "forall(member(X, []), fail)" <> [])

let test_prefix_negation_operator () =
  let db = Database.with_prelude () in
  check Alcotest.bool "\\+ parses and works" true
    (solutions db "\\+ member(z, [a,b])" <> []);
  check Alcotest.bool "\\+ of success fails" true
    (solutions db "\\+ member(a, [a,b])" = [])

let test_nqueens_integration () =
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "range(L, H, []) :- L > H.
        range(L, H, [L|T]) :- L =< H, L1 is L + 1, range(L1, H, T).
        solve_q([], Acc, Acc).
        solve_q(Unplaced, Acc, Qs) :-
          select(Q, Unplaced, Rest),
          \\+ attacks(Q, Acc),
          solve_q(Rest, [Q|Acc], Qs).
        attacks(Q, Acc) :- att(Q, 1, Acc).
        att(Q, D, [P|_]) :- P =:= Q + D.
        att(Q, D, [P|_]) :- P =:= Q - D.
        att(Q, D, [_|Ps]) :- D1 is D + 1, att(Q, D1, Ps).
        nqueens(N, Qs) :- range(1, N, Ns), solve_q(Ns, [], Qs).");
  (* 6-queens has exactly 4 solutions. *)
  (match first_binding db "findall(Qs, nqueens(6, Qs), All), length(All, N)" "N" with
  | Some (Term.Int 4) -> ()
  | Some t -> Alcotest.failf "expected 4 solutions, got %s" (Term.to_string t)
  | None -> Alcotest.fail "no answer");
  (* And each reported board is a valid permutation. *)
  match first_binding db "nqueens(6, Qs)" "Qs" with
  | Some qs -> (
    match Term.to_list qs with
    | Some cells ->
      let ints =
        List.filter_map (function Term.Int i -> Some i | _ -> None) cells
      in
      check Alcotest.int "six queens" 6 (List.length ints);
      check Alcotest.bool "a permutation of 1..6" true
        (List.sort compare ints = [ 1; 2; 3; 4; 5; 6 ])
    | None -> Alcotest.fail "solution is not a list")
  | None -> Alcotest.fail "no board found"

let test_or_parallel_nqueens () =
  (* The nqueens top goal has two range clauses -> 1 viable branch, but
     solve_q's select produces deep nondeterminism; race the top-level
     clauses of solve_q via a wrapper predicate with distinct strategies. *)
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "range(L, H, []) :- L > H.
        range(L, H, [L|T]) :- L =< H, L1 is L + 1, range(L1, H, T).
        solve_q([], Acc, Acc).
        solve_q(Unplaced, Acc, Qs) :-
          select(Q, Unplaced, Rest),
          \\+ attacks(Q, Acc),
          solve_q(Rest, [Q|Acc], Qs).
        attacks(Q, Acc) :- att(Q, 1, Acc).
        att(Q, D, [P|_]) :- P =:= Q + D.
        att(Q, D, [P|_]) :- P =:= Q - D.
        att(Q, D, [_|Ps]) :- D1 is D + 1, att(Q, D1, Ps).
        board(hard, Qs) :- range(1, 7, Ns), solve_q(Ns, [], Qs).
        board(easy, Qs) :- range(1, 5, Ns), solve_q(Ns, [], Qs).");
  let goal, _ = Parser.query "board(Which, Qs)" in
  let r = Or_parallel.solve_sim db goal in
  (* Sequential order tries 'hard' first; the race returns whichever board
     finishes first (the 5-queens one). *)
  check Alcotest.bool "a solution arrived" true (r.Or_parallel.first_solution <> None);
  check Alcotest.bool "the easy board won" true (r.Or_parallel.winner_branch = Some 1);
  check Alcotest.bool "speedup over clause order" true (r.Or_parallel.speedup > 1.)

(* ---------------- Branches / OR-parallel ---------------- *)

let test_branches_cover_all_solutions () =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "append(X, Y, [1,2])" in
  let qvars = Term.vars goal in
  let all = (Solve.run db goal).Solve.solutions in
  let via_branches =
    List.concat_map
      (fun b -> (Solve.run_branch db ~query_vars:qvars b).Solve.solutions)
      (Solve.branches db goal)
  in
  check Alcotest.int "same number of solutions" (List.length all)
    (List.length via_branches);
  List.iter
    (fun s ->
      if not (List.mem s via_branches) then Alcotest.fail "missing solution")
    all

let test_branches_of_builtin_empty () =
  let db = Database.with_prelude () in
  let goal, _ = Parser.query "X is 1 + 1" in
  check Alcotest.int "builtins have no clause branches" 0
    (List.length (Solve.branches db goal))

let or_db () =
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "burn(0). burn(N) :- N > 0, M is N - 1, burn(M).
        route(slow1) :- burn(500), fail.
        route(slow2) :- burn(800), fail.
        route(quick) :- burn(20).");
  db

let test_or_parallel_sim_speedup () =
  let db = or_db () in
  let goal, _ = Parser.query "route(R)" in
  let r = Or_parallel.solve_sim ~seed:1 db goal in
  check Alcotest.bool "winner is the quick clause" true
    (r.Or_parallel.winner_branch = Some 2);
  check Alcotest.bool "solution found" true
    (match r.Or_parallel.first_solution with
     | Some [ (_, Term.Atom "quick") ] -> true
     | _ -> false);
  check Alcotest.bool "parallel beats sequential" true
    (r.Or_parallel.speedup > 5.);
  check Alcotest.int "three branches" 3 (Array.length r.Or_parallel.branch_inferences);
  check Alcotest.bool "sequential paid for failing prefixes" true
    (r.Or_parallel.seq_inferences
     > r.Or_parallel.branch_inferences.(2))

let test_or_parallel_sim_no_solution () =
  let db = Database.with_prelude () in
  ignore (Database.add_program db "dead(x) :- fail. dead(y) :- fail.");
  let goal, _ = Parser.query "dead(D)" in
  let r = Or_parallel.solve_sim db goal in
  check Alcotest.bool "no solution" true (r.Or_parallel.first_solution = None)

let test_or_parallel_sim_cow_sharing () =
  let db = or_db () in
  let goal, _ = Parser.query "route(R)" in
  let r = Or_parallel.solve_sim ~heap_bytes:(64 * 1024) db goal in
  (* Branches write bindings: some pages privatised, but far fewer than the
     whole heap (read-mostly sharing, section 7). *)
  let heap_pages = 64 * 1024 / Cost_model.modern.Cost_model.page_size in
  check Alcotest.bool "some copies" true (r.Or_parallel.cow_copies > 0);
  check Alcotest.bool "far fewer copies than 3 full heaps" true
    (r.Or_parallel.cow_copies < 3 * heap_pages)

let test_or_parallel_real_agrees () =
  let db = or_db () in
  let goal, _ = Parser.query "route(R)" in
  let r = Or_parallel.solve_real ~timeout:30. db goal in
  check Alcotest.bool "real race finds the quick route" true
    (match r.Or_parallel.value with
     | Some [ (_, Term.Atom "quick") ] -> true
     | _ -> false)

(* ---------------- AND-parallelism ---------------- *)

let test_and_conjuncts_flatten () =
  let goal, _ = Parser.query "a, b, (c, d), e" in
  check Alcotest.int "five conjuncts" 5 (List.length (And_parallel.conjuncts goal));
  let single, _ = Parser.query "just_one" in
  check Alcotest.int "single goal" 1 (List.length (And_parallel.conjuncts single))

let test_and_independent_groups () =
  let goal, _ = Parser.query "p(X), q(Y), r(X), s(Z)" in
  let groups = And_parallel.independent_groups (And_parallel.conjuncts goal) in
  (* p(X) and r(X) share X; q(Y) and s(Z) are each alone. *)
  check Alcotest.int "three groups" 3 (List.length groups);
  check Alcotest.(list int) "group sizes" [ 2; 1; 1 ]
    (List.map List.length groups)

let test_and_transitive_sharing () =
  let goal, _ = Parser.query "p(X, Y), q(Y, Z), r(Z)" in
  let groups = And_parallel.independent_groups (And_parallel.conjuncts goal) in
  check Alcotest.int "one chained group" 1 (List.length groups)

let and_db () =
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "burn(0). burn(N) :- N > 0, M is N - 1, burn(M).
        left(a) :- burn(500).
        right(b) :- burn(2000).
        mid(c) :- burn(1000).");
  db

let test_and_parallel_solves_and_speeds_up () =
  let db = and_db () in
  let goal, _ = Parser.query "left(X), right(Y), mid(Z)" in
  let r = And_parallel.solve_sim db goal in
  check Alcotest.int "three groups" 3 r.And_parallel.groups;
  (match r.And_parallel.solution with
  | Some bindings ->
    check Alcotest.int "all three bound" 3 (List.length bindings)
  | None -> Alcotest.fail "expected a combined solution");
  (* Elapsed is the slowest group, so speedup = sum/max < number of groups. *)
  check Alcotest.bool "faster than sequential" true (r.And_parallel.speedup > 1.5);
  check Alcotest.bool "bounded by max group" true
    (r.And_parallel.speedup < 3.);
  (* The OR contrast: AND must wait for the slowest, never the fastest. *)
  let max_group =
    float_of_int (Stats.max (Array.map float_of_int r.And_parallel.group_inferences) |> int_of_float)
  in
  check Alcotest.bool "par time >= slowest group's work" true
    (r.And_parallel.par_time >= max_group *. 1e-4 -. 1e-9)

let test_and_parallel_dependent_degenerates () =
  let db = and_db () in
  let goal, _ = Parser.query "left(X), mid(X)" in
  let r = And_parallel.solve_sim db goal in
  check Alcotest.int "one group" 1 r.And_parallel.groups;
  check Alcotest.bool "no solution (a <> c)" true (r.And_parallel.solution = None)

let test_and_parallel_failure_propagates () =
  let db = and_db () in
  ignore (Database.add_program db "never(x) :- fail.");
  let goal, _ = Parser.query "left(X), never(Y)" in
  let r = And_parallel.solve_sim db goal in
  check Alcotest.bool "one failing conjunct fails the conjunction" true
    (r.And_parallel.solution = None)

(* ---------------- classic programs / relational properties --------- *)

let test_map_coloring () =
  (* Colour Australia's mainland states with three colours. *)
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "colour(red). colour(green). colour(blue).
        diff(X, Y) :- colour(X), colour(Y), X \\= Y.
        australia(WA, NT, SA, Q, NSW, V) :-
          diff(WA, NT), diff(WA, SA), diff(NT, SA), diff(NT, Q),
          diff(SA, Q), diff(SA, NSW), diff(SA, V), diff(Q, NSW),
          diff(NSW, V).");
  let sols = solutions db "australia(WA, NT, SA, Q, NSW, V)" in
  check Alcotest.bool "colourings exist" true (List.length sols > 0);
  (* Verify a returned colouring really is proper. *)
  (match sols with
  | first :: _ ->
    let colour_of name = List.assoc name first in
    let adjacent =
      [ ("WA","NT"); ("WA","SA"); ("NT","SA"); ("NT","Q"); ("SA","Q");
        ("SA","NSW"); ("SA","V"); ("Q","NSW"); ("NSW","V") ]
    in
    List.iter
      (fun (a, b) ->
        if Term.equal (colour_of a) (colour_of b) then
          Alcotest.failf "%s and %s share a colour" a b)
      adjacent
  | [] -> Alcotest.fail "unreachable");
  (* 3-colourings of this map come in colour permutations: a multiple of 6. *)
  check Alcotest.int "solution count divisible by 3!" 0 (List.length sols mod 6)

let pl_int_list l = Term.to_string (Term.of_list (List.map (fun i -> Term.Int i) l))

let prop_prolog_reverse_involution =
  QCheck.Test.make ~name:"prolog: reverse(reverse(L)) = L" ~count:60
    QCheck.(list_of_size Gen.(int_range 0 8) (int_bound 50))
    (fun l ->
      let db = Database.with_prelude () in
      let q = Printf.sprintf "reverse(%s, R), reverse(R, L2)" (pl_int_list l) in
      match Solve.query db q with
      | Ok (sol :: _) ->
        List.assoc_opt "L2" sol = Some (Term.of_list (List.map (fun i -> Term.Int i) l))
      | _ -> false)

let prop_prolog_append_length =
  QCheck.Test.make ~name:"prolog: |append(A,B)| = |A|+|B|" ~count:60
    QCheck.(pair
              (list_of_size Gen.(int_range 0 6) (int_bound 9))
              (list_of_size Gen.(int_range 0 6) (int_bound 9)))
    (fun (a, b) ->
      let db = Database.with_prelude () in
      let q =
        Printf.sprintf "append(%s, %s, C), length(C, N)" (pl_int_list a)
          (pl_int_list b)
      in
      match Solve.query db q with
      | Ok (sol :: _) ->
        List.assoc_opt "N" sol = Some (Term.Int (List.length a + List.length b))
      | _ -> false)

let prop_prolog_member_complete =
  QCheck.Test.make ~name:"prolog: member/2 enumerates exactly the elements"
    ~count:60
    QCheck.(list_of_size Gen.(int_range 1 7) (int_bound 9))
    (fun l ->
      let db = Database.with_prelude () in
      let q = Printf.sprintf "member(X, %s)" (pl_int_list l) in
      match Solve.query db q with
      | Ok sols ->
        List.map (fun s -> List.assoc "X" s) sols
        = List.map (fun i -> Term.Int i) l
      | Error _ -> false)

let () =
  Alcotest.run "prolog"
    [
      ( "term",
        [
          Alcotest.test_case "constructors" `Quick test_term_constructors;
          Alcotest.test_case "to_list" `Quick test_term_to_list;
          Alcotest.test_case "functor and vars" `Quick test_term_functor_vars;
          Alcotest.test_case "rename" `Quick test_term_rename;
          Alcotest.test_case "printing" `Quick test_term_printing;
        ] );
      ( "subst",
        [
          Alcotest.test_case "walk and resolve" `Quick test_subst_walk_resolve;
          Alcotest.test_case "no rebinding" `Quick test_subst_double_bind;
          Alcotest.test_case "restrict" `Quick test_subst_restrict;
        ] );
      ( "unify",
        [
          Alcotest.test_case "basics" `Quick test_unify_basics;
          Alcotest.test_case "binding" `Quick test_unify_binding;
          Alcotest.test_case "structural" `Quick test_unify_structural;
          Alcotest.test_case "occurs check" `Quick test_unify_occurs_check;
          Alcotest.test_case "array length" `Quick test_unify_arrays_length;
          QCheck_alcotest.to_alcotest prop_unify_sound;
          QCheck_alcotest.to_alcotest prop_unify_symmetric;
          QCheck_alcotest.to_alcotest prop_unify_reflexive;
        ] );
      ( "lexer",
        [
          Alcotest.test_case "token mix" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "quoted atoms" `Quick test_lexer_quoted;
          Alcotest.test_case "symbolic vs clause dot" `Quick test_lexer_symbolic_vs_dot;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "facts and rules" `Quick test_parser_fact_and_rule;
          Alcotest.test_case "operator precedence" `Quick test_parser_operators_precedence;
          Alcotest.test_case "left associativity" `Quick test_parser_left_assoc;
          Alcotest.test_case "lists" `Quick test_parser_lists;
          Alcotest.test_case "conjunction structure" `Quick test_parser_conjunction_structure;
          Alcotest.test_case "variable scoping" `Quick test_parser_var_scoping;
          Alcotest.test_case "underscore fresh" `Quick test_parser_underscore_fresh;
          Alcotest.test_case "negative integers" `Quick test_parser_negative_int;
          Alcotest.test_case "errors" `Quick test_parser_errors;
        ] );
      ( "database",
        [
          Alcotest.test_case "add and lookup" `Quick test_database_add_and_lookup;
          Alcotest.test_case "rejects bad head" `Quick test_database_rejects_bad_head;
          Alcotest.test_case "directives returned" `Quick test_database_directives_returned;
          Alcotest.test_case "prelude loads" `Quick test_database_prelude_loads;
        ] );
      ( "solve",
        [
          Alcotest.test_case "facts and backtracking" `Quick test_solve_facts_and_backtracking;
          Alcotest.test_case "family tree" `Quick test_solve_family_tree;
          Alcotest.test_case "prelude append" `Quick test_solve_prelude_append;
          Alcotest.test_case "arithmetic" `Quick test_solve_arithmetic;
          Alcotest.test_case "arithmetic errors" `Quick test_solve_arith_errors;
          Alcotest.test_case "unification builtins" `Quick test_solve_unification_builtins;
          Alcotest.test_case "type tests" `Quick test_solve_type_tests;
          Alcotest.test_case "cut" `Quick test_solve_cut;
          Alcotest.test_case "if-then-else" `Quick test_solve_if_then_else;
          Alcotest.test_case "negation as failure" `Quick test_solve_negation_as_failure;
          Alcotest.test_case "disjunction" `Quick test_solve_disjunction;
          Alcotest.test_case "unknown predicate" `Quick test_solve_unknown_predicate;
          Alcotest.test_case "depth limit" `Quick test_solve_depth_limit;
          Alcotest.test_case "max solutions" `Quick test_solve_max_solutions;
          Alcotest.test_case "inference counting" `Quick test_solve_inference_counting;
          Alcotest.test_case "succeeds/first" `Quick test_solve_succeeds_first;
        ] );
      ( "builtins-extended",
        [
          Alcotest.test_case "findall collects in order" `Quick test_findall_collects_in_order;
          Alcotest.test_case "findall empty" `Quick test_findall_empty_on_failure;
          Alcotest.test_case "findall template" `Quick test_findall_with_template;
          Alcotest.test_case "forall" `Quick test_forall;
          Alcotest.test_case "prefix negation" `Quick test_prefix_negation_operator;
          Alcotest.test_case "n-queens" `Quick test_nqueens_integration;
          Alcotest.test_case "or-parallel n-queens" `Quick test_or_parallel_nqueens;
        ] );
      ( "programs",
        [
          Alcotest.test_case "map colouring" `Quick test_map_coloring;
          QCheck_alcotest.to_alcotest prop_prolog_reverse_involution;
          QCheck_alcotest.to_alcotest prop_prolog_append_length;
          QCheck_alcotest.to_alcotest prop_prolog_member_complete;
        ] );
      ( "and_parallel",
        [
          Alcotest.test_case "conjuncts flatten" `Quick test_and_conjuncts_flatten;
          Alcotest.test_case "independent groups" `Quick test_and_independent_groups;
          Alcotest.test_case "transitive sharing" `Quick test_and_transitive_sharing;
          Alcotest.test_case "solves and speeds up" `Quick
            test_and_parallel_solves_and_speeds_up;
          Alcotest.test_case "dependent degenerates" `Quick
            test_and_parallel_dependent_degenerates;
          Alcotest.test_case "failure propagates" `Quick
            test_and_parallel_failure_propagates;
        ] );
      ( "or_parallel",
        [
          Alcotest.test_case "branches cover all solutions" `Quick
            test_branches_cover_all_solutions;
          Alcotest.test_case "builtin goals have no branches" `Quick
            test_branches_of_builtin_empty;
          Alcotest.test_case "simulated speedup" `Quick test_or_parallel_sim_speedup;
          Alcotest.test_case "no solution" `Quick test_or_parallel_sim_no_solution;
          Alcotest.test_case "cow sharing is read-mostly" `Quick
            test_or_parallel_sim_cow_sharing;
          Alcotest.test_case "real fork race agrees" `Quick test_or_parallel_real_agrees;
        ] );
    ]
