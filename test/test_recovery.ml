(* Tests for recovery blocks (section 5.1) and fault injection. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

let mk_engine ?(model = Cost_model.uniform ()) () =
  Engine.create ~model ~trace:false ()

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"rb-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "process did not complete"

let accept_positive = fun _ctx v -> v > 0

let timed name cost value =
  Recovery_block.alternate ~name (fun ctx ->
      Engine.delay ctx cost;
      value)

let test_make_validations () =
  Alcotest.check_raises "no alternates"
    (Invalid_argument "Recovery_block.make: no alternates") (fun () ->
      ignore (Recovery_block.make ~acceptance:accept_positive []))

let test_sequential_primary_accepted () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "primary" 1. 10; timed "secondary" 1. 20 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "primary accepted" true (r.Recovery_block.verdict = `Accepted (0, 10));
  check Alcotest.int "one attempt" 1 r.Recovery_block.attempts;
  check Alcotest.int "no rollback" 0 r.Recovery_block.rollbacks;
  check cf "only primary's time" 1. r.Recovery_block.elapsed

let test_sequential_fallback_after_rejection () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "primary" 2. (-1); timed "secondary" 1. 7 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "secondary accepted" true
    (r.Recovery_block.verdict = `Accepted (1, 7));
  check Alcotest.int "two attempts" 2 r.Recovery_block.attempts;
  check Alcotest.int "one rollback" 1 r.Recovery_block.rollbacks;
  check cf "paid for both" 3. r.Recovery_block.elapsed

let test_sequential_rollback_restores_sink_state () =
  let eng = mk_engine () in
  let model = Engine.model eng in
  let space = Address_space.create (Engine.frame_store eng) model in
  let heap = Heap.create space in
  let cell = Heap.int_cell heap 5 in
  let rb =
    Recovery_block.make
      ~acceptance:(fun ctx _ -> Mem.get ctx cell < 100)
      [
        Recovery_block.alternate ~name:"bad" (fun ctx ->
            Mem.set ctx cell 1000;
            0);
        Recovery_block.alternate ~name:"good" (fun ctx ->
            let v = Mem.get ctx cell in
            Mem.set ctx cell (v + 1);
            v);
      ]
  in
  let r = in_process ~space eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "good accepted with pristine view" true
    (r.Recovery_block.verdict = `Accepted (1, 5));
  check Alcotest.int "final state is good's write" 6
    (Address_space.get_int space ~addr:(Heap.cell_addr cell))

let test_sequential_all_rejected () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "a" 1. (-1); timed "b" 1. (-2) ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "failed" true (r.Recovery_block.verdict = `Failed);
  check Alcotest.int "both rolled back" 2 r.Recovery_block.rollbacks

let test_sequential_crash_counts_as_rejection () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [
        Recovery_block.alternate ~name:"raises" (fun _ ->
            raise (Alternative.Failed "logic error"));
        timed "backup" 1. 3;
      ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "backup accepted" true (r.Recovery_block.verdict = `Accepted (1, 3))

let test_concurrent_fastest_accepted_wins () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "slow-good" 5. 1; timed "fast-bad" 1. (-1); timed "mid-good" 2. 2 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx rb) in
  check Alcotest.bool "fastest accepted version wins" true
    (r.Recovery_block.verdict = `Accepted (2, 2));
  check cf "its time" 2. r.Recovery_block.elapsed

let test_concurrent_faster_than_sequential_under_faults () =
  let rb () =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "primary" 10. (-1); timed "secondary" 2. 5 ]
  in
  let eng = mk_engine () in
  let seq = in_process eng (fun ctx -> Recovery_block.run_sequential ctx (rb ())) in
  let eng = mk_engine () in
  let conc = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx (rb ())) in
  check cf "sequential pays both" 12. seq.Recovery_block.elapsed;
  check cf "concurrent pays the good one" 2. conc.Recovery_block.elapsed;
  check Alcotest.bool "same verdict value" true
    (seq.Recovery_block.verdict = conc.Recovery_block.verdict)

let test_concurrent_all_rejected () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive [ timed "a" 1. (-1); timed "b" 2. 0 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx rb) in
  check Alcotest.bool "failed" true (r.Recovery_block.verdict = `Failed)

let test_concurrent_distributed_policy () =
  let eng = mk_engine ~model:Cost_model.hp_9000_350 () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "v1" 0.5 1; timed "v2" 0.2 2 ]
  in
  let policy = Recovery_block.distributed_policy ~nodes:3 ~crashed:[ 0 ] () in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx ~policy rb) in
  check Alcotest.bool "works with a crashed sync node" true
    (r.Recovery_block.verdict = `Accepted (1, 2))

(* Regression: [run_concurrent] used to report
   [attempts = List.length rb.alternates], as if every version had run —
   but the whole point of the transformation is that the winner's
   elimination wave cuts the losers short. With one fast winner and two
   slow losers only the winner runs its version (and acceptance test) to
   a verdict, so [attempts] must be 1, not 3. *)
let test_concurrent_attempts_counts_finished_versions () =
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "fast" 0.1 1; timed "slow-a" 5. 2; timed "slow-b" 5. 3 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx rb) in
  check Alcotest.bool "fast version accepted" true
    (r.Recovery_block.verdict = `Accepted (0, 1));
  check Alcotest.int "only the winner ran to a verdict" 1
    r.Recovery_block.attempts;
  (* And when every version does finish (all rejected), they all count. *)
  let eng = mk_engine () in
  let rb =
    Recovery_block.make ~acceptance:accept_positive
      [ timed "a" 1. (-1); timed "b" 2. 0 ]
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx rb) in
  check Alcotest.int "all finished versions count" 2 r.Recovery_block.attempts

let test_to_alternatives_folds_acceptance () =
  let eng = mk_engine () in
  let rb = Recovery_block.make ~acceptance:accept_positive [ timed "neg" 0.1 (-5) ] in
  let alts = Recovery_block.to_alternatives rb in
  check Alcotest.int "one alternative" 1 (List.length alts);
  let outcome = in_process eng (fun ctx -> Alt_block.run_first ctx alts) in
  check Alcotest.bool "acceptance folded into alternative" true
    (match outcome with Alt_block.Block_failed _ -> true | _ -> false)

(* ---------------- Fault ---------------- *)

let test_fault_always_crash () =
  let eng = mk_engine () in
  let alt = Fault.always ~mode:Fault.Crash (timed "v" 1. 1) in
  let rb = Recovery_block.make ~acceptance:accept_positive [ alt; timed "ok" 1. 2 ] in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "crashing version skipped" true
    (r.Recovery_block.verdict = `Accepted (1, 2))

(* Regression: [Wrong] without [~corrupt] must be rejected at wrap time.
   Pre-fix, [always]/[wrap] returned a seemingly valid alternate that only
   raised inside the child — indistinguishable from a failing version. *)
let test_fault_wrong_requires_corrupt () =
  let eager_always =
    try
      ignore (Fault.always ~mode:Fault.Wrong (timed "v" 1. 1));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "always: corrupt required eagerly" true eager_always;
  let eager_wrap =
    let f = Fault.create ~seed:7 in
    try
      ignore (Fault.wrap f ~p:0.5 ~mode:Fault.Wrong (timed "v" 1. 1));
      false
    with Invalid_argument _ -> true
  in
  check Alcotest.bool "wrap: corrupt required eagerly" true eager_wrap

let test_fault_wrong_rejected_by_acceptance () =
  let eng = mk_engine () in
  let alt =
    Fault.always ~mode:Fault.Wrong ~corrupt:(fun v -> -v) (timed "v" 1. 5)
  in
  let rb = Recovery_block.make ~acceptance:accept_positive [ alt; timed "ok" 1. 9 ] in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check Alcotest.bool "corrupted result rejected" true
    (r.Recovery_block.verdict = `Accepted (1, 9))

let test_fault_slow () =
  let eng = mk_engine () in
  let alt = Fault.always ~mode:(Fault.Slow 3.) (timed "v" 1. 5) in
  let rb = Recovery_block.make ~acceptance:accept_positive [ alt ] in
  let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
  check cf "slowdown added" 4. r.Recovery_block.elapsed

let test_fault_probability_deterministic () =
  let count_failures seed =
    let f = Fault.create ~seed in
    let failures = ref 0 in
    for _ = 1 to 100 do
      let eng = mk_engine () in
      let alt = Fault.wrap f ~p:0.5 ~mode:Fault.Crash (timed "v" 0.1 1) in
      let rb = Recovery_block.make ~acceptance:accept_positive [ alt ] in
      let r = in_process eng (fun ctx -> Recovery_block.run_sequential ctx rb) in
      if r.Recovery_block.verdict = `Failed then incr failures
    done;
    !failures
  in
  let a = count_failures 42 and b = count_failures 42 in
  check Alcotest.int "same seed, same pattern" a b;
  check Alcotest.bool "roughly half fail" true (a > 25 && a < 75)

let () =
  Alcotest.run "recovery"
    [
      ( "sequential",
        [
          Alcotest.test_case "make validations" `Quick test_make_validations;
          Alcotest.test_case "primary accepted" `Quick test_sequential_primary_accepted;
          Alcotest.test_case "fallback after rejection" `Quick
            test_sequential_fallback_after_rejection;
          Alcotest.test_case "rollback restores sink state" `Quick
            test_sequential_rollback_restores_sink_state;
          Alcotest.test_case "all rejected" `Quick test_sequential_all_rejected;
          Alcotest.test_case "crash counts as rejection" `Quick
            test_sequential_crash_counts_as_rejection;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "fastest accepted wins" `Quick
            test_concurrent_fastest_accepted_wins;
          Alcotest.test_case "beats sequential under faults" `Quick
            test_concurrent_faster_than_sequential_under_faults;
          Alcotest.test_case "all rejected" `Quick test_concurrent_all_rejected;
          Alcotest.test_case "attempts counts finished versions" `Quick
            test_concurrent_attempts_counts_finished_versions;
          Alcotest.test_case "distributed (consensus) policy" `Quick
            test_concurrent_distributed_policy;
          Alcotest.test_case "to_alternatives" `Quick test_to_alternatives_folds_acceptance;
        ] );
      ( "fault",
        [
          Alcotest.test_case "always crash" `Quick test_fault_always_crash;
          Alcotest.test_case "wrong requires corrupt" `Quick test_fault_wrong_requires_corrupt;
          Alcotest.test_case "wrong rejected by acceptance" `Quick
            test_fault_wrong_rejected_by_acceptance;
          Alcotest.test_case "slow mode" `Quick test_fault_slow;
          Alcotest.test_case "probabilistic, deterministic per seed" `Quick
            test_fault_probability_deterministic;
        ] );
    ]
