(* Tests for the paper's contribution: the analytic model, the sequential
   alternative-block semantics, the transparent concurrent execution, and
   the scheme comparison. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

(* ---------------- Analytic ---------------- *)

let test_pi_basic () =
  check cf "pi" 2.0 (Analytic.pi ~times:[| 10.; 20.; 30. |] ~overhead:0.);
  check Alcotest.bool "wins" true (Analytic.wins ~times:[| 10.; 20.; 30. |] ~overhead:0.);
  check Alcotest.bool "loses with equal times" false
    (Analytic.wins ~times:[| 10.; 10. |] ~overhead:1.)

let test_pi_validations () =
  Alcotest.check_raises "empty" (Invalid_argument "Analytic.pi: no alternatives")
    (fun () -> ignore (Analytic.pi ~times:[||] ~overhead:0.));
  Alcotest.check_raises "negative overhead"
    (Invalid_argument "Analytic.pi: negative overhead") (fun () ->
      ignore (Analytic.pi ~times:[| 1. |] ~overhead:(-1.)))

let test_break_even () =
  check cf "mean - best" 10. (Analytic.break_even_overhead ~times:[| 10.; 20.; 30. |]);
  check cf "zero dispersion" 0. (Analytic.break_even_overhead ~times:[| 5.; 5. |])

let test_overhead_total () =
  let o = { Analytic.setup = 1.; runtime = 2.; selection = 3. } in
  check cf "sum" 6. (Analytic.overhead_total o);
  check cf "zero" 0. (Analytic.overhead_total Analytic.zero_overhead)

(* The table of section 4.3 — the recomputed PI must match the paper's
   printed values to their printed precision. *)
let test_table_4_3_matches_paper () =
  let rows = Analytic.table_4_3 () in
  check Alcotest.int "six rows" 6 (List.length rows);
  List.iter
    (fun (r : Analytic.row) ->
      let printed_precision =
        (* The paper prints two significant decimals for most rows. *)
        Float.abs (r.Analytic.pi_value -. r.Analytic.pi_paper)
      in
      if printed_precision > 0.005 then
        Alcotest.failf "row %s: recomputed %.4f vs paper %.2f" r.Analytic.label
          r.Analytic.pi_value r.Analytic.pi_paper)
    rows

let prop_pi_formula =
  QCheck.Test.make ~name:"PI = mean / (best + overhead)" ~count:300
    QCheck.(
      pair
        (array_of_size Gen.(int_range 1 10) (float_range 0.1 1000.))
        (float_range 0. 100.))
    (fun (times, overhead) ->
      let pi = Analytic.pi ~times ~overhead in
      Float.abs (pi -. (Stats.mean times /. (Stats.min times +. overhead)))
      < 1e-9)

let prop_pi_antitone_in_overhead =
  QCheck.Test.make ~name:"PI decreases with overhead" ~count:300
    QCheck.(array_of_size Gen.(int_range 1 10) (float_range 0.1 1000.))
    (fun times ->
      Analytic.pi ~times ~overhead:1. >= Analytic.pi ~times ~overhead:2.)

(* ---------------- helpers ---------------- *)

let mk_engine ?(cores = Engine.Infinite) ?(model = Cost_model.uniform ()) () =
  Engine.create ~cores ~model ~trace:false ()

(* Run a function inside a root simulated process and return its result. *)
let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"test-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "process did not complete"

let with_heap eng f =
  let model = Engine.model eng in
  let space = Address_space.create (Engine.frame_store eng) model in
  let heap = Heap.create space in
  f space heap

(* ---------------- Alt_block (sequential semantics) ---------------- *)

let test_run_first_picks_first_success () =
  let eng = mk_engine () in
  let alts =
    [
      Alternative.failing ~cost:1. ();
      Alternative.fixed ~cost:1. "second";
      Alternative.fixed ~cost:1. "third";
    ]
  in
  match in_process eng (fun ctx -> Alt_block.run_first ctx alts) with
  | Alt_block.Selected { index; value } ->
    check Alcotest.int "index 1" 1 index;
    check Alcotest.string "value" "second" value
  | Alt_block.Block_failed _ -> Alcotest.fail "should have selected"

let test_run_first_all_fail () =
  let eng = mk_engine () in
  let alts = [ Alternative.failing ~cost:1. (); Alternative.failing ~cost:1. () ] in
  match in_process eng (fun ctx -> Alt_block.run_first ctx alts) with
  | Alt_block.Block_failed _ -> ()
  | Alt_block.Selected _ -> Alcotest.fail "should have failed"

let test_run_first_guard_skips () =
  let eng = mk_engine () in
  let alts =
    [
      Alternative.make ~guard:(fun _ -> false) (fun _ -> "guarded");
      Alternative.make (fun _ -> "open");
    ]
  in
  match in_process eng (fun ctx -> Alt_block.run_first ctx alts) with
  | Alt_block.Selected { index; value } ->
    check Alcotest.int "skipped closed guard" 1 index;
    check Alcotest.string "value" "open" value
  | Alt_block.Block_failed _ -> Alcotest.fail "should have selected"

let test_sequential_rollback_restores_memory () =
  let eng = mk_engine () in
  with_heap eng (fun space heap ->
      let cell = Heap.int_cell heap 100 in
      let alts =
        [
          Alternative.make (fun ctx ->
              Mem.set ctx cell 999;
              (* Fail after the write: it must be rolled back. *)
              raise (Alternative.Failed "after write"));
          Alternative.make (fun ctx ->
              check Alcotest.int "second trial sees pristine state" 100
                (Mem.get ctx cell);
              Mem.set ctx cell 200;
              "done");
        ]
      in
      match in_process ~space eng (fun ctx -> Alt_block.run_first ctx alts) with
      | Alt_block.Selected { value = "done"; _ } ->
        check Alcotest.int "committed value" 200
          (Address_space.get_int space ~addr:(Heap.cell_addr cell))
      | _ -> Alcotest.fail "unexpected outcome")

let test_sequential_rollback_on_total_failure () =
  let eng = mk_engine () in
  with_heap eng (fun space heap ->
      let cell = Heap.int_cell heap 1 in
      let alts =
        [
          Alternative.make (fun ctx ->
              Mem.set ctx cell 2;
              raise (Alternative.Failed "x"));
        ]
      in
      (match in_process ~space eng (fun ctx -> Alt_block.run_first ctx alts) with
      | Alt_block.Block_failed _ -> ()
      | _ -> Alcotest.fail "expected failure");
      check Alcotest.int "state restored" 1
        (Address_space.get_int space ~addr:(Heap.cell_addr cell)))

let test_run_random_is_seed_deterministic () =
  let run seed =
    let eng = mk_engine () in
    let rng = Rng.create ~seed in
    let alts = List.init 5 (fun i -> Alternative.fixed ~cost:1. i) in
    in_process eng (fun ctx -> Alt_block.run_random ctx ~rng alts)
  in
  check Alcotest.bool "same seed, same choice" true (run 5 = run 5)

let test_run_random_commits_to_failure () =
  let eng = mk_engine () in
  let rng = Rng.create ~seed:1 in
  let alts = [ Alternative.failing ~cost:1. () ] in
  match in_process eng (fun ctx -> Alt_block.run_random ctx ~rng alts) with
  | Alt_block.Block_failed _ -> ()
  | Alt_block.Selected _ -> Alcotest.fail "lone failing alternative must fail"

let test_run_oracle () =
  let eng = mk_engine () in
  let alts = [ Alternative.fixed ~cost:5. "slow"; Alternative.fixed ~cost:1. "fast" ] in
  let elapsed = ref 0. in
  let outcome =
    in_process eng (fun ctx ->
        let t0 = Engine.now_v ctx in
        let o = Alt_block.run_oracle ctx ~costs:[| 5.; 1. |] alts in
        elapsed := Engine.now_v ctx -. t0;
        o)
  in
  (match outcome with
  | Alt_block.Selected { index = 1; value = "fast" } -> ()
  | _ -> Alcotest.fail "oracle must pick the cheapest");
  check cf "oracle pays only the best time" 1. !elapsed

(* ---------------- Concurrent ---------------- *)

let test_concurrent_fastest_wins () =
  let eng = mk_engine () in
  let r =
    Concurrent.run_toplevel eng
      [
        Alternative.fixed ~cost:3. "slow";
        Alternative.fixed ~cost:1. "fast";
        Alternative.fixed ~cost:2. "mid";
      ]
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { index = 1; value = "fast" } -> ()
  | _ -> Alcotest.fail "fastest must win");
  check cf "elapsed = best time (zero overhead model)" 1. r.Concurrent.elapsed;
  check Alcotest.int "three children" 3 (List.length r.Concurrent.children);
  check cf "losers burnt 1s each" 2. r.Concurrent.wasted_cpu

let test_concurrent_guard_excludes () =
  let eng = mk_engine () in
  let r =
    Concurrent.run_toplevel eng
      [
        Alternative.make ~guard:(fun _ -> false) (fun ctx ->
            Engine.delay ctx 0.1;
            "closed but fast");
        Alternative.fixed ~cost:5. "open";
      ]
  in
  match r.Concurrent.outcome with
  | Alt_block.Selected { index = 1; _ } -> ()
  | _ -> Alcotest.fail "closed guard must not win"

let test_concurrent_all_fail () =
  let eng = mk_engine () in
  let r =
    Concurrent.run_toplevel eng
      [ Alternative.failing ~cost:1. (); Alternative.failing ~cost:2. () ]
  in
  (match r.Concurrent.outcome with
  | Alt_block.Block_failed _ -> ()
  | _ -> Alcotest.fail "must fail");
  (* The FAIL branch is known as soon as the last alternative fails. *)
  check cf "failure known at 2s" 2. r.Concurrent.elapsed

let test_concurrent_timeout () =
  let eng = mk_engine () in
  let policy = { Concurrent.default_policy with timeout = 0.5 } in
  let r = Concurrent.run_toplevel eng ~policy [ Alternative.fixed ~cost:100. 0 ] in
  (match r.Concurrent.outcome with
  | Alt_block.Block_failed "timeout" -> ()
  | _ -> Alcotest.fail "must time out");
  check cf "at the deadline" 0.5 r.Concurrent.elapsed;
  check Alcotest.int "no survivors" 0 (Engine.live_count eng)

let test_concurrent_crashing_alternative_is_failure () =
  let eng = mk_engine () in
  let r =
    Concurrent.run_toplevel eng
      [
        Alternative.make (fun _ -> failwith "unexpected bug");
        Alternative.fixed ~cost:1. "ok";
      ]
  in
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = "ok"; _ } -> ()
  | _ -> Alcotest.fail "crash must not poison the block"

let test_concurrent_absorbs_winner_memory () =
  let eng = mk_engine () in
  let model = Engine.model eng in
  let space = Address_space.create (Engine.frame_store eng) model in
  let heap = Heap.create space in
  let cell = Heap.int_cell heap 0 in
  let mark value cost =
    Alternative.make (fun ctx ->
        Mem.set ctx cell value;
        Engine.delay ctx cost;
        value)
  in
  let r = Concurrent.run_toplevel eng ~space [ mark 111 2.; mark 222 1. ] in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = 222; _ } -> ()
  | _ -> Alcotest.fail "fast marker must win");
  (* The parent's view must show exactly the winner's state change. *)
  check Alcotest.int "winner's write absorbed" 222
    (Address_space.get_int space ~addr:(Heap.cell_addr cell));
  check Alcotest.bool "loser pages privatised then dropped" true
    (r.Concurrent.child_cow_copies >= 1)

let test_concurrent_transparency_vs_sequential () =
  (* Executing the block concurrently must leave the same final state as a
     sequential execution of the winning alternative alone. *)
  let final_of run_block =
    let eng = mk_engine () in
    let model = Engine.model eng in
    let space = Address_space.create (Engine.frame_store eng) model in
    let heap = Heap.create space in
    let a = Heap.int_cell heap 0 and b = Heap.int_cell heap 0 in
    let alts =
      [
        Alternative.make (fun ctx ->
            Mem.set ctx a 1;
            Engine.delay ctx 5.;
            Mem.set ctx b 1;
            "slow");
        Alternative.make (fun ctx ->
            Mem.set ctx a 2;
            Engine.delay ctx 1.;
            Mem.set ctx b 2;
            "fast");
      ]
    in
    let _ = run_block eng space alts in
    (Address_space.get_int space ~addr:(Heap.cell_addr a),
     Address_space.get_int space ~addr:(Heap.cell_addr b))
  in
  let concurrent =
    final_of (fun eng space alts -> Concurrent.run_toplevel eng ~space alts)
  in
  let sequential_of_winner =
    final_of (fun eng space alts ->
        let winner = List.nth alts 1 in
        in_process ~space eng (fun ctx -> Alt_block.run_first ctx [ winner ]))
  in
  check Alcotest.(pair int int) "indistinguishable final state"
    sequential_of_winner concurrent

let test_concurrent_setup_cost_charged () =
  (* With a real model, setup grows with the number of alternatives and the
     winner's elapsed time includes it. *)
  let model = Cost_model.hp_9000_350 in
  let run n =
    let eng = Engine.create ~model ~trace:false () in
    let space =
      Address_space.create ~size_hint:(320 * 1024) (Engine.frame_store eng) model
    in
    let alts = List.init n (fun i -> Alternative.fixed ~cost:1. i) in
    Concurrent.run_toplevel eng ~space alts
  in
  let r2 = run 2 and r4 = run 4 in
  check Alcotest.bool "setup grows with N" true
    (r4.Concurrent.setup_cost > r2.Concurrent.setup_cost *. 1.5);
  check Alcotest.bool "elapsed includes setup" true
    (r2.Concurrent.elapsed >= 1. +. r2.Concurrent.setup_cost);
  (* 2 forks of 80 pages at calibrated cost: 2 * 12ms. *)
  check Alcotest.bool "setup is 2 forks" true
    (Float.abs (r2.Concurrent.setup_cost -. 0.024) < 1e-6)

let test_concurrent_sim_matches_analytic_table () =
  List.iter
    (fun (row : Analytic.row) ->
      let eng = mk_engine () in
      let alts =
        Array.to_list
          (Array.mapi (fun i c -> Alternative.fixed ~cost:c i) row.Analytic.times)
      in
      let r = Concurrent.run_toplevel eng alts in
      let pi_sim =
        Stats.mean row.Analytic.times /. (r.Concurrent.elapsed +. row.Analytic.overhead)
      in
      if Float.abs (pi_sim -. row.Analytic.pi_value) > 1e-9 then
        Alcotest.failf "row %s: simulated PI %f vs analytic %f" row.Analytic.label
          pi_sim row.Analytic.pi_value)
    (Analytic.table_4_3 ())

let test_elimination_sync_charges_parent () =
  let model = { (Cost_model.uniform ()) with kill_per_sibling = 0.1 } in
  let eng = Engine.create ~model ~trace:false () in
  let r =
    Concurrent.run_toplevel eng
      ~policy:{ Concurrent.default_policy with elimination = Concurrent.Sync_elim }
      [ Alternative.fixed ~cost:1. "w"; Alternative.fixed ~cost:5. "l1";
        Alternative.fixed ~cost:5. "l2" ]
  in
  check cf "selection = 2 kill issues" 0.2 r.Concurrent.selection_cost;
  check cf "elapsed includes elimination" 1.2 r.Concurrent.elapsed

let test_elimination_async_does_not_charge_parent () =
  let model = { (Cost_model.uniform ()) with kill_per_sibling = 0.1; msg_latency = 0.05 } in
  let eng = Engine.create ~model ~trace:false () in
  let r =
    Concurrent.run_toplevel eng
      ~policy:{ Concurrent.default_policy with elimination = Concurrent.Async_elim }
      [ Alternative.fixed ~cost:1. "w"; Alternative.fixed ~cost:5. "l1";
        Alternative.fixed ~cost:5. "l2" ]
  in
  check cf "no selection charge" 0. r.Concurrent.selection_cost;
  check cf "parent resumes at once" 1. r.Concurrent.elapsed;
  (* But the zombies burn CPU until the background kill lands. *)
  check Alcotest.bool "extra wasted work" true (r.Concurrent.wasted_cpu > 2.)

let test_async_elimination_wastes_more_than_sync () =
  let run elimination =
    let model = { (Cost_model.uniform ()) with msg_latency = 0.2 } in
    let eng = Engine.create ~model ~trace:false () in
    (Concurrent.run_toplevel eng
       ~policy:{ Concurrent.default_policy with elimination }
       [ Alternative.fixed ~cost:1. 0; Alternative.fixed ~cost:9. 1 ])
      .Concurrent.wasted_cpu
  in
  check Alcotest.bool "async wastes more cpu" true
    (run Concurrent.Async_elim > run Concurrent.Sync_elim)

let test_concurrent_with_consensus_sync () =
  let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
  let policy =
    {
      Concurrent.default_policy with
      sync =
        Concurrent.Consensus
          { nodes = 5; crashed = [ 1 ]; vote_delay = 0.001; reply_timeout = 0.5 };
    }
  in
  let r =
    Concurrent.run_toplevel eng ~policy
      [ Alternative.fixed ~cost:1. "a"; Alternative.fixed ~cost:0.2 "b" ]
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = "b"; _ } -> ()
  | _ -> Alcotest.fail "fastest must win under consensus too");
  check Alcotest.bool "consensus messages counted" true (r.Concurrent.sync_messages > 0);
  check Alcotest.bool "consensus adds latency" true (r.Concurrent.elapsed > 0.2)

let test_concurrent_consensus_majority_crashed_fails_block () =
  let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
  let policy =
    {
      Concurrent.default_policy with
      sync =
        Concurrent.Consensus
          { nodes = 3; crashed = [ 0; 1 ]; vote_delay = 0.; reply_timeout = 0.1 };
      timeout = 30.;
    }
  in
  let r = Concurrent.run_toplevel eng ~policy [ Alternative.fixed ~cost:0.1 "x" ] in
  match r.Concurrent.outcome with
  | Alt_block.Block_failed _ -> ()
  | _ -> Alcotest.fail "no majority -> no commit"

let test_cores_contention_slows_block () =
  let run cores =
    let eng = mk_engine ~cores () in
    (Concurrent.run_toplevel eng
       (List.init 4 (fun i -> Alternative.fixed ~cost:1. i)))
      .Concurrent.elapsed
  in
  check cf "infinite cores: best time" 1. (run Engine.Infinite);
  check cf "1 core: mean-ish (4 tasks PS until first completes)" 4.
    (run (Engine.Cores 1));
  check cf "2 cores" 2. (run (Engine.Cores 2));
  check Alcotest.bool "monotone in cores" true
    (run (Engine.Cores 1) >= run (Engine.Cores 2)
    && run (Engine.Cores 2) >= run (Engine.Cores 4))

let test_empty_block_rejected () =
  let eng = mk_engine () in
  let raised = ref false in
  ignore
    (Engine.spawn eng ~cloneable:false (fun ctx ->
         try ignore (Concurrent.run ctx ([] : unit Alternative.t list))
         with Invalid_argument _ -> raised := true));
  Engine.run eng;
  check Alcotest.bool "empty rejected" true !raised

let test_winner_fate_completed_losers_failed () =
  let eng = Engine.create ~trace:false () in
  let r =
    Concurrent.run_toplevel eng
      [ Alternative.fixed ~cost:1. "w"; Alternative.fixed ~cost:2. "l" ]
  in
  let reg = Engine.registry eng in
  (match (r.Concurrent.winner, r.Concurrent.children) with
  | Some w, children ->
    check Alcotest.bool "winner completed" true
      (Fate_registry.fate reg w = Some Predicate.Completed);
    List.iter
      (fun c ->
        if not (Pid.equal c w) then
          check Alcotest.bool "loser failed" true
            (Fate_registry.fate reg c = Some Predicate.Failed))
      children
  | None, _ -> Alcotest.fail "expected a winner")

(* The observable outcome must equal some sequential selection: the
   transparency property, tested over random cost vectors. *)
let prop_concurrent_selects_a_real_alternative =
  QCheck.Test.make ~name:"concurrent outcome is a valid selection" ~count:100
    QCheck.(array_of_size Gen.(int_range 1 6) (float_range 0.1 10.))
    (fun costs ->
      let eng = mk_engine () in
      let alts = Array.to_list (Array.mapi (fun i c -> Alternative.fixed ~cost:c i) costs) in
      let r = Concurrent.run_toplevel eng alts in
      match r.Concurrent.outcome with
      | Alt_block.Selected { index; value } ->
        index = value
        && Float.abs (costs.(index) -. Stats.min costs) < 1e-9
        && Float.abs (r.Concurrent.elapsed -. Stats.min costs) < 1e-9
      | Alt_block.Block_failed _ -> false)

let test_children_inherit_parent_predicates () =
  (* Section 3.3: "the predicates of a child process consist of those of
     the parent", plus self-completes and siblings-fail. *)
  let eng = Engine.create ~trace:false () in
  let dep = List.hd (Engine.fresh_pids eng 1) in
  let child_preds = ref [] in
  ignore
    (Engine.spawn eng ~cloneable:false
       ~predicate:(Predicate.make ~must_complete:[ dep ] ~must_fail:[])
       (fun ctx ->
         ignore
           (Concurrent.run ctx
              [
                Alternative.make (fun cctx ->
                    child_preds := Engine.my_predicate cctx :: !child_preds;
                    Engine.delay cctx 0.1;
                    0);
                Alternative.make (fun cctx ->
                    child_preds := Engine.my_predicate cctx :: !child_preds;
                    Engine.delay cctx 0.2;
                    1);
              ])));
  ignore (Engine.spawn eng ~pid:dep (fun ctx -> Engine.delay ctx 10.));
  Engine.run eng;
  check Alcotest.int "both children sampled" 2 (List.length !child_preds);
  List.iter
    (fun p ->
      check Alcotest.bool "parent's assumption inherited" true
        (Predicate.mem_completes p dep);
      check Alcotest.int "parent's + self + sibling" 3 (Predicate.cardinal p))
    !child_preds

(* ---------------- Schemes ---------------- *)

let test_schemes_evaluate_known_matrix () =
  let w =
    { Schemes.description = "fixed"; times = [| [| 1.; 9. |]; [| 9.; 1. |] |] }
  in
  let e = Schemes.evaluate w ~overhead:0.5 in
  check cf "A: both columns mean 5" 5. e.Schemes.scheme_a;
  check cf "B: global mean 5" 5. e.Schemes.scheme_b;
  check cf "oracle: always 1" 1. e.Schemes.oracle;
  check cf "C = oracle + overhead" 1.5 e.Schemes.scheme_c;
  check cf "PI" (5. /. 1.5) e.Schemes.pi_c_over_b

let test_schemes_a_picks_best_column () =
  let w =
    { Schemes.description = "skewed"; times = [| [| 2.; 10. |]; [| 4.; 10. |] |] }
  in
  let e = Schemes.evaluate w ~overhead:0. in
  check cf "A commits to column 0" 3. e.Schemes.scheme_a

let test_schemes_generate_shapes () =
  let rng = Rng.create ~seed:7 in
  let w =
    Schemes.generate ~rng ~inputs:50 ~alternatives:3
      ~dist:(`Bimodal (1., 100., 0.3)) ~description:"queries"
  in
  check Alcotest.int "inputs" 50 (Array.length w.Schemes.times);
  check Alcotest.int "alternatives" 3 (Array.length w.Schemes.times.(0));
  Array.iter
    (Array.iter (fun v ->
         if v <> 1. && v <> 100. then Alcotest.fail "bimodal draws only two values"))
    w.Schemes.times

let prop_scheme_c_bounds =
  QCheck.Test.make ~name:"oracle <= A and oracle <= B" ~count:200
    QCheck.(pair small_int (int_range 1 5))
    (fun (seed, alternatives) ->
      let rng = Rng.create ~seed in
      let w =
        Schemes.generate ~rng ~inputs:20 ~alternatives ~dist:(`Exponential 5.)
          ~description:"prop"
      in
      let e = Schemes.evaluate w ~overhead:0. in
      e.Schemes.oracle <= e.Schemes.scheme_a +. 1e-9
      && e.Schemes.oracle <= e.Schemes.scheme_b +. 1e-9)

let () =
  Alcotest.run "core"
    [
      ( "analytic",
        [
          Alcotest.test_case "pi basics" `Quick test_pi_basic;
          Alcotest.test_case "pi validations" `Quick test_pi_validations;
          Alcotest.test_case "break-even overhead" `Quick test_break_even;
          Alcotest.test_case "overhead total" `Quick test_overhead_total;
          Alcotest.test_case "table 4.3 matches the paper" `Quick
            test_table_4_3_matches_paper;
          QCheck_alcotest.to_alcotest prop_pi_formula;
          QCheck_alcotest.to_alcotest prop_pi_antitone_in_overhead;
        ] );
      ( "alt_block",
        [
          Alcotest.test_case "run_first picks first success" `Quick
            test_run_first_picks_first_success;
          Alcotest.test_case "run_first all fail" `Quick test_run_first_all_fail;
          Alcotest.test_case "guards skip alternatives" `Quick test_run_first_guard_skips;
          Alcotest.test_case "rollback restores memory" `Quick
            test_sequential_rollback_restores_memory;
          Alcotest.test_case "rollback on total failure" `Quick
            test_sequential_rollback_on_total_failure;
          Alcotest.test_case "run_random deterministic per seed" `Quick
            test_run_random_is_seed_deterministic;
          Alcotest.test_case "run_random commits" `Quick test_run_random_commits_to_failure;
          Alcotest.test_case "run_oracle" `Quick test_run_oracle;
        ] );
      ( "concurrent",
        [
          Alcotest.test_case "fastest wins" `Quick test_concurrent_fastest_wins;
          Alcotest.test_case "guards exclude" `Quick test_concurrent_guard_excludes;
          Alcotest.test_case "all fail" `Quick test_concurrent_all_fail;
          Alcotest.test_case "timeout" `Quick test_concurrent_timeout;
          Alcotest.test_case "crash handled as failure" `Quick
            test_concurrent_crashing_alternative_is_failure;
          Alcotest.test_case "winner memory absorbed" `Quick
            test_concurrent_absorbs_winner_memory;
          Alcotest.test_case "transparent vs sequential" `Quick
            test_concurrent_transparency_vs_sequential;
          Alcotest.test_case "setup cost charged" `Quick test_concurrent_setup_cost_charged;
          Alcotest.test_case "simulation matches table 4.3" `Quick
            test_concurrent_sim_matches_analytic_table;
          Alcotest.test_case "sync elimination charges parent" `Quick
            test_elimination_sync_charges_parent;
          Alcotest.test_case "async elimination is free for the parent" `Quick
            test_elimination_async_does_not_charge_parent;
          Alcotest.test_case "async wastes more cpu than sync" `Quick
            test_async_elimination_wastes_more_than_sync;
          Alcotest.test_case "consensus sync" `Quick test_concurrent_with_consensus_sync;
          Alcotest.test_case "consensus majority crashed" `Quick
            test_concurrent_consensus_majority_crashed_fails_block;
          Alcotest.test_case "core contention" `Quick test_cores_contention_slows_block;
          Alcotest.test_case "empty block rejected" `Quick test_empty_block_rejected;
          Alcotest.test_case "fates recorded" `Quick test_winner_fate_completed_losers_failed;
          Alcotest.test_case "children inherit parent predicates" `Quick
            test_children_inherit_parent_predicates;
          QCheck_alcotest.to_alcotest prop_concurrent_selects_a_real_alternative;
        ] );
      ( "schemes",
        [
          Alcotest.test_case "known matrix" `Quick test_schemes_evaluate_known_matrix;
          Alcotest.test_case "A picks best column" `Quick test_schemes_a_picks_best_column;
          Alcotest.test_case "generate shapes" `Quick test_schemes_generate_shapes;
          QCheck_alcotest.to_alcotest prop_scheme_c_bounds;
        ] );
    ]
