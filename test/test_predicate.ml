(* Tests for predicates (section 3.3 / 3.4.2 semantics) and the fate
   registry. *)

let check = Alcotest.check
let p n = Pid.of_int n

let pred completes fails =
  Predicate.make ~must_complete:(List.map p completes)
    ~must_fail:(List.map p fails)

let test_empty_certain () =
  check Alcotest.bool "empty is certain" true (Predicate.is_certain Predicate.empty);
  check Alcotest.int "cardinal" 0 (Predicate.cardinal Predicate.empty)

let test_make_inconsistent () =
  Alcotest.check_raises "inconsistent" (Invalid_argument "Predicate.make: inconsistent")
    (fun () -> ignore (pred [ 1 ] [ 1 ]))

let test_assume () =
  let q = Predicate.assume_completes Predicate.empty (p 1) in
  check Alcotest.bool "mem completes" true (Predicate.mem_completes q (p 1));
  check Alcotest.bool "not certain" false (Predicate.is_certain q);
  let q = Predicate.assume_fails q (p 2) in
  check Alcotest.bool "mem fails" true (Predicate.mem_fails q (p 2));
  check Alcotest.int "cardinal 2" 2 (Predicate.cardinal q);
  Alcotest.check_raises "conflicting assumption"
    (Invalid_argument "Predicate.assume_fails: pid already assumed to complete")
    (fun () -> ignore (Predicate.assume_fails q (p 1)));
  Alcotest.check_raises "conflicting assumption 2"
    (Invalid_argument "Predicate.assume_completes: pid already assumed to fail")
    (fun () -> ignore (Predicate.assume_completes q (p 2)))

let test_implies () =
  let r = pred [ 1; 2 ] [ 3 ] in
  check Alcotest.bool "subset implied" true (Predicate.implies r (pred [ 1 ] []));
  check Alcotest.bool "exact implied" true (Predicate.implies r (pred [ 1; 2 ] [ 3 ]));
  check Alcotest.bool "empty implied" true (Predicate.implies r Predicate.empty);
  check Alcotest.bool "superset not implied" false
    (Predicate.implies r (pred [ 1; 2; 4 ] [ 3 ]));
  check Alcotest.bool "fails side checked" false
    (Predicate.implies r (pred [] [ 5 ]))

let test_conflicts () =
  let r = pred [ 1 ] [ 2 ] in
  check Alcotest.bool "complete vs fail" true (Predicate.conflicts r (pred [] [ 1 ]));
  check Alcotest.bool "fail vs complete" true (Predicate.conflicts r (pred [ 2 ] []));
  check Alcotest.bool "disjoint no conflict" false
    (Predicate.conflicts r (pred [ 3 ] [ 4 ]));
  check Alcotest.bool "agreement no conflict" false
    (Predicate.conflicts r (pred [ 1 ] [ 2 ]))

let test_conjoin () =
  let a = pred [ 1 ] [ 2 ] and b = pred [ 3 ] [ 4 ] in
  let c = Predicate.conjoin a b in
  check Alcotest.int "union" 4 (Predicate.cardinal c);
  check Alcotest.bool "has both" true
    (Predicate.mem_completes c (p 1) && Predicate.mem_completes c (p 3));
  Alcotest.check_raises "conjoin conflict"
    (Invalid_argument "Predicate.conjoin: conflicting predicates") (fun () ->
      ignore (Predicate.conjoin a (pred [ 2 ] [])))

let test_resolve () =
  let q = pred [ 1 ] [ 2 ] in
  (match Predicate.resolve q ~pid:(p 1) ~fate:Predicate.Completed with
  | Predicate.Simplified q' ->
    check Alcotest.bool "assumption removed" false (Predicate.mem_completes q' (p 1))
  | _ -> Alcotest.fail "expected Simplified");
  (match Predicate.resolve q ~pid:(p 1) ~fate:Predicate.Failed with
  | Predicate.Falsified -> ()
  | _ -> Alcotest.fail "expected Falsified");
  (match Predicate.resolve q ~pid:(p 2) ~fate:Predicate.Failed with
  | Predicate.Simplified q' ->
    check Alcotest.bool "fail assumption removed" false (Predicate.mem_fails q' (p 2))
  | _ -> Alcotest.fail "expected Simplified");
  (match Predicate.resolve q ~pid:(p 2) ~fate:Predicate.Completed with
  | Predicate.Falsified -> ()
  | _ -> Alcotest.fail "expected Falsified");
  (match Predicate.resolve q ~pid:(p 9) ~fate:Predicate.Completed with
  | Predicate.Unchanged -> ()
  | _ -> Alcotest.fail "expected Unchanged")

let test_equal_compare () =
  check Alcotest.bool "equal" true (Predicate.equal (pred [ 1 ] [ 2 ]) (pred [ 1 ] [ 2 ]));
  check Alcotest.bool "not equal" false (Predicate.equal (pred [ 1 ] []) (pred [ 2 ] []));
  check Alcotest.int "compare self" 0 (Predicate.compare (pred [ 1 ] [ 2 ]) (pred [ 1 ] [ 2 ]))

let test_pp () =
  check Alcotest.string "printed" "{+P1 -P2}" (Predicate.to_string (pred [ 1 ] [ 2 ]))

let test_hash_consing () =
  (* Predicates are interned: structural equality coincides with physical
     equality, regardless of construction order or route. *)
  check Alcotest.bool "same lists, same box" true
    (pred [ 1; 2 ] [ 3 ] == pred [ 2; 1 ] [ 3 ]);
  check Alcotest.bool "assume route reaches the same box" true
    (Predicate.assume_completes (pred [ 1 ] [ 3 ]) (p 2) == pred [ 1; 2 ] [ 3 ]);
  check Alcotest.bool "conjoin route reaches the same box" true
    (Predicate.conjoin (pred [ 1 ] []) (pred [ 2 ] [ 3 ]) == pred [ 1; 2 ] [ 3 ]);
  check Alcotest.bool "empty is unique" true
    (pred [] [] == Predicate.empty);
  (* [resolve] re-interns its result. *)
  (match Predicate.resolve (pred [ 1; 2 ] []) ~pid:(p 2) ~fate:Predicate.Completed with
  | Predicate.Simplified q -> check Alcotest.bool "resolved box" true (q == pred [ 1 ] [])
  | _ -> Alcotest.fail "expected Simplified")

(* ---------------- Fate_registry ---------------- *)

let test_registry_record_and_fate () =
  let r = Fate_registry.create () in
  check Alcotest.bool "unknown" true (Fate_registry.fate r (p 1) = None);
  Fate_registry.record r (p 1) Predicate.Completed;
  check Alcotest.bool "recorded" true
    (Fate_registry.fate r (p 1) = Some Predicate.Completed);
  Fate_registry.record r (p 1) Predicate.Completed;
  Alcotest.check_raises "fates are immutable"
    (Invalid_argument "Fate_registry.record: fate already decided") (fun () ->
      Fate_registry.record r (p 1) Predicate.Failed);
  check Alcotest.int "decided" 1 (Fate_registry.decided r)

let test_registry_normalize () =
  let r = Fate_registry.create () in
  Fate_registry.record r (p 1) Predicate.Completed;
  Fate_registry.record r (p 2) Predicate.Failed;
  (match Fate_registry.normalize r (pred [ 1 ] [ 2 ]) with
  | `Live q -> check Alcotest.bool "fully resolved" true (Predicate.is_certain q)
  | `Dead -> Alcotest.fail "should be live");
  (match Fate_registry.normalize r (pred [ 2 ] []) with
  | `Dead -> ()
  | `Live _ -> Alcotest.fail "should be dead");
  (match Fate_registry.normalize r (pred [ 1; 5 ] []) with
  | `Live q ->
    check Alcotest.bool "residual assumption" true (Predicate.mem_completes q (p 5));
    check Alcotest.int "only one left" 1 (Predicate.cardinal q)
  | `Dead -> Alcotest.fail "should be live")

(* ---------------- properties ---------------- *)

let gen_pred =
  QCheck.make
    ~print:(fun q -> Predicate.to_string q)
    QCheck.Gen.(
      let* completes = list_size (int_range 0 5) (int_range 0 9) in
      let* fails = list_size (int_range 0 5) (int_range 10 19) in
      return
        (Predicate.make
           ~must_complete:(List.map Pid.of_int completes)
           ~must_fail:(List.map Pid.of_int fails)))

let prop_memoised_implies_conflicts =
  (* The memo caches must agree with a from-scratch structural check, on
     first use and on the cached second use. *)
  let subset a b = Pid.Set.subset a b in
  QCheck.Test.make ~name:"memoised implies/conflicts match structural truth"
    ~count:500 (QCheck.pair gen_pred gen_pred) (fun (r, s) ->
      let naive_implies =
        subset (Predicate.must_complete s) (Predicate.must_complete r)
        && subset (Predicate.must_fail s) (Predicate.must_fail r)
      in
      let naive_conflicts =
        (not
           (Pid.Set.is_empty
              (Pid.Set.inter (Predicate.must_complete r) (Predicate.must_fail s))))
        || not
             (Pid.Set.is_empty
                (Pid.Set.inter (Predicate.must_fail r) (Predicate.must_complete s)))
      in
      Predicate.implies r s = naive_implies
      && Predicate.implies r s = naive_implies
      && Predicate.conflicts r s = naive_conflicts
      && Predicate.conflicts r s = naive_conflicts)

let prop_implies_reflexive =
  QCheck.Test.make ~name:"implies is reflexive" ~count:300 gen_pred (fun q ->
      Predicate.implies q q)

let prop_conjoin_implies_both =
  QCheck.Test.make ~name:"conjoin implies both conjuncts" ~count:300
    (QCheck.pair gen_pred gen_pred) (fun (a, b) ->
      if Predicate.conflicts a b then true
      else begin
        let c = Predicate.conjoin a b in
        Predicate.implies c a && Predicate.implies c b
      end)

let prop_conflicts_symmetric =
  QCheck.Test.make ~name:"conflicts is symmetric" ~count:300
    (QCheck.pair gen_pred gen_pred) (fun (a, b) ->
      Predicate.conflicts a b = Predicate.conflicts b a)

let prop_empty_is_unit =
  QCheck.Test.make ~name:"empty is a unit for conjoin" ~count:300 gen_pred
    (fun q -> Predicate.equal (Predicate.conjoin q Predicate.empty) q)

let prop_resolve_shrinks =
  QCheck.Test.make ~name:"resolve never grows the predicate" ~count:300
    (QCheck.pair gen_pred (QCheck.int_bound 19)) (fun (q, n) ->
      match Predicate.resolve q ~pid:(Pid.of_int n) ~fate:Predicate.Completed with
      | Predicate.Unchanged -> true
      | Predicate.Falsified -> true
      | Predicate.Simplified q' -> Predicate.cardinal q' = Predicate.cardinal q - 1)

let () =
  Alcotest.run "predicate"
    [
      ( "predicate",
        [
          Alcotest.test_case "empty is certain" `Quick test_empty_certain;
          Alcotest.test_case "make rejects inconsistency" `Quick test_make_inconsistent;
          Alcotest.test_case "assume" `Quick test_assume;
          Alcotest.test_case "implies" `Quick test_implies;
          Alcotest.test_case "conflicts" `Quick test_conflicts;
          Alcotest.test_case "conjoin" `Quick test_conjoin;
          Alcotest.test_case "resolve" `Quick test_resolve;
          Alcotest.test_case "equal/compare" `Quick test_equal_compare;
          Alcotest.test_case "hash-consing" `Quick test_hash_consing;
          Alcotest.test_case "printing" `Quick test_pp;
        ] );
      ( "fate_registry",
        [
          Alcotest.test_case "record and query" `Quick test_registry_record_and_fate;
          Alcotest.test_case "normalize" `Quick test_registry_normalize;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_memoised_implies_conflicts;
            prop_implies_reflexive;
            prop_conjoin_implies_both;
            prop_conflicts_symmetric;
            prop_empty_is_unit;
            prop_resolve_shrinks;
          ] );
    ]
