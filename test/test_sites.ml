(* Tests for the site/topology layer: placement, site crashes, partitions
   and healing, epoch fencing, and coordinator recovery — plus the
   robustness satellites that ride along (kill idempotency, poll-only
   timeouts, consensus-retry determinism under site faults). *)

let check = Alcotest.check

let mk ?(seed = 42) () =
  Engine.create ~seed ~model:Cost_model.hp_9000_350 ()

(* ------------------------------------------------------------------ *)
(* Placement                                                          *)
(* ------------------------------------------------------------------ *)

let test_create_validations () =
  let eng = mk () in
  Alcotest.check_raises "no sites" (Invalid_argument "Sites.create: no sites")
    (fun () -> ignore (Sites.create eng ~names:[]));
  Alcotest.check_raises "duplicate site"
    (Invalid_argument "Sites.create: duplicate site \"a\"") (fun () ->
      ignore (Sites.create eng ~names:[ "a"; "b"; "a" ]))

let test_placement () =
  let eng = mk () in
  let sites = Sites.create eng ~names:[ "a"; "b" ] in
  check
    Alcotest.(list string)
    "names in declaration order" [ "a"; "b" ] (Sites.names sites);
  (* Explicit placement wins. *)
  let explicit = Engine.spawn eng ~site:"b" (fun _ -> ()) in
  (* A child adopts its parent's site. *)
  let child = ref None in
  let parent =
    Engine.spawn eng ~site:"b" (fun ctx ->
        child :=
          Some
            (Engine.spawn (Engine.engine ctx) ~parent:(Engine.self ctx)
               (fun _ -> ())))
  in
  (* Parentless processes without an explicit site are spread around. *)
  let p0 = Engine.spawn eng (fun _ -> ()) in
  let p1 = Engine.spawn eng (fun _ -> ()) in
  Engine.run eng;
  check
    Alcotest.(option string)
    "explicit site wins" (Some "b") (Sites.site_of sites explicit);
  check
    Alcotest.(option string)
    "child inherits parent's site" (Some "b")
    (Sites.site_of sites (Option.get !child));
  (match (Sites.site_of sites p0, Sites.site_of sites p1) with
  | Some a, Some b when a <> b -> ()
  | placed ->
    Alcotest.failf "round-robin should spread parentless pids: %s / %s"
      (Option.value ~default:"-" (fst placed))
      (Option.value ~default:"-" (snd placed)));
  (* [members] reports everything ever placed there, dead included, and
     rejects unknown sites. *)
  check Alcotest.bool "explicit is a member of b" true
    (List.mem explicit (Sites.members sites "b"));
  check Alcotest.bool "parent is a member of b" true
    (List.mem parent (Sites.members sites "b"));
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Sites.members: unknown site \"zz\"") (fun () ->
      ignore (Sites.members sites "zz"))

(* ------------------------------------------------------------------ *)
(* Crashes                                                            *)
(* ------------------------------------------------------------------ *)

let test_crash_kills_residents () =
  let eng = mk () in
  let sites = Sites.create eng ~names:[ "a"; "b" ] in
  let victim = Engine.spawn eng ~site:"a" (fun ctx -> Engine.delay ctx 10.) in
  let survivor = Engine.spawn eng ~site:"b" (fun ctx -> Engine.delay ctx 10.) in
  let finished = ref false in
  Engine.after eng ~delay:1. (fun () ->
      Sites.crash sites "a";
      Sites.crash sites "a" (* idempotent *);
      finished := true);
  Engine.run eng;
  check Alcotest.bool "crash ran" true !finished;
  check Alcotest.bool "site a crashed" true (Sites.is_crashed sites "a");
  check Alcotest.(list string) "alive sites" [ "b" ] (Sites.alive_sites sites);
  check
    Alcotest.(list string)
    "crashed sites" [ "a" ] (Sites.crashed_sites sites);
  (match Engine.status eng victim with
  | Some (Engine.Eliminated reason) ->
    check Alcotest.string "kill reason names the site" "site a crashed" reason
  | st ->
    Alcotest.failf "victim should be eliminated, got %s"
      (match st with None -> "still alive" | Some _ -> "another status"));
  check Alcotest.bool "survivor unaffected" true
    (match Engine.status eng survivor with
    | Some Engine.Exited_ok -> true
    | _ -> false);
  check Alcotest.int "exactly one Site_crashed traced" 1
    (Trace.count (Engine.trace eng) ~f:(function
      | Trace.Site_crashed { site } -> site = "a"
      | _ -> false));
  Alcotest.check_raises "unknown site"
    (Invalid_argument "Sites.crash: unknown site \"zz\"") (fun () ->
      Sites.crash sites "zz")

(* ------------------------------------------------------------------ *)
(* Partitions                                                         *)
(* ------------------------------------------------------------------ *)

let test_partition_validations () =
  let eng = mk () in
  let sites = Sites.create eng ~names:[ "a"; "b"; "c" ] in
  Alcotest.check_raises "empty group"
    (Invalid_argument "Sites.partition: empty site group") (fun () ->
      Sites.partition sites ~left:[] ~right:[ "a" ]);
  Alcotest.check_raises "overlapping groups"
    (Invalid_argument "Sites.partition: site \"a\" on both sides of the cut")
    (fun () -> Sites.partition sites ~left:[ "a"; "b" ] ~right:[ "a" ])

let test_partition_drops_and_heal_restores () =
  let eng = mk () in
  let sites = Sites.create eng ~names:[ "a"; "b" ] in
  Sites.partition sites ~left:[ "a" ] ~right:[ "b" ];
  check Alcotest.bool "link cut" true (Sites.partitioned sites "a" "b");
  check Alcotest.bool "cut is symmetric" true (Sites.partitioned sites "b" "a");
  let got = ref [] in
  let recv =
    Engine.spawn eng ~site:"b" (fun ctx ->
        let rec loop () =
          match Engine.receive_timeout ctx ~timeout:0.4 () with
          | None -> ()
          | Some m ->
            got := m.Message.payload :: !got;
            loop ()
        in
        loop ())
  in
  (* The sender keeps retrying across the heal: sends launched while the
     cut is up are dropped at delivery, the first one after the heal gets
     through. *)
  ignore
    (Engine.spawn eng ~site:"a" (fun ctx ->
         for i = 1 to 8 do
           Engine.send ctx recv (Payload.Int i);
           Engine.delay ctx 0.05
         done));
  Engine.after eng ~delay:0.125 (fun () ->
      Sites.heal sites ~left:[ "a" ] ~right:[ "b" ]);
  Engine.run eng;
  check Alcotest.bool "link restored" false (Sites.partitioned sites "a" "b");
  (match List.rev !got with
  | [] -> Alcotest.fail "nothing delivered after the heal"
  | Payload.Int first :: _ ->
    if first < 3 then
      Alcotest.failf "message %d crossed the cut before the heal" first
  | _ -> Alcotest.fail "unexpected payload");
  let dropped =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Injected { kind = "partition-drop"; _ } -> true
      | _ -> false)
  in
  check Alcotest.bool "drops traced" true (dropped >= 1);
  check Alcotest.int "exactly one Partitioned traced" 1
    (Trace.count (Engine.trace eng) ~f:(function
      | Trace.Partitioned _ -> true
      | _ -> false));
  check Alcotest.int "exactly one Healed traced" 1
    (Trace.count (Engine.trace eng) ~f:(function
      | Trace.Healed _ -> true
      | _ -> false))

(* ------------------------------------------------------------------ *)
(* Satellite: Engine.kill is idempotent                               *)
(* ------------------------------------------------------------------ *)

let test_kill_idempotent () =
  let eng = mk () in
  let p = Engine.spawn eng (fun ctx -> Engine.delay ctx 1.) in
  Engine.after eng ~delay:0.1 (fun () -> Engine.kill eng p ~reason:"first");
  Engine.after eng ~delay:0.1 (fun () -> Engine.kill eng p ~reason:"second");
  Engine.run eng;
  (match Engine.status eng p with
  | Some (Engine.Eliminated "first") -> ()
  | _ -> Alcotest.fail "first kill should win, second should be a no-op");
  (* Killing an already-dead pid after the run is a no-op too. *)
  Engine.kill eng p ~reason:"third";
  check Alcotest.bool "status unchanged" true
    (Engine.status eng p = Some (Engine.Eliminated "first"))

let test_kill_after_natural_exit () =
  let eng = mk () in
  let p = Engine.spawn eng (fun _ -> ()) in
  Engine.after eng ~delay:0.5 (fun () -> Engine.kill eng p ~reason:"late") ;
  Engine.run eng;
  check Alcotest.bool "natural exit preserved" true
    (Engine.status eng p = Some Engine.Exited_ok)

let test_kill_racing_natural_exit () =
  (* The kill lands at the very virtual instant the body finishes. Whichever
     way the tie breaks, it must break the same way every run, without an
     exception, and later kills must not rewrite the outcome. *)
  let run_once () =
    let eng = mk ~seed:11 () in
    let p = Engine.spawn eng (fun ctx -> Engine.delay ctx 0.2) in
    Engine.after eng ~delay:0.2 (fun () -> Engine.kill eng p ~reason:"race");
    Engine.run eng;
    Engine.kill eng p ~reason:"post-race";
    match Engine.status eng p with
    | Some Engine.Exited_ok -> "ok"
    | Some (Engine.Eliminated r) -> "eliminated: " ^ r
    | Some _ -> "other"
    | None -> "alive"
  in
  let first = run_once () in
  check Alcotest.bool "decided" true (first = "ok" || first = "eliminated: race");
  check Alcotest.string "deterministic tie-break" first (run_once ())

(* ------------------------------------------------------------------ *)
(* Satellite: timeout 0. is a pure poll                               *)
(* ------------------------------------------------------------------ *)

let test_receive_timeout_zero_polls () =
  let eng = mk () in
  let results = ref [] in
  let recv =
    Engine.spawn eng (fun ctx ->
        let t0 = Engine.now_v ctx in
        let empty = Engine.receive_timeout ctx ~timeout:0. () in
        results := ("empty poll is None", empty = None) :: !results;
        results :=
          ("empty poll burned no time", Engine.now_v ctx = t0) :: !results;
        (* Let the sender's message arrive, then poll it out. *)
        Engine.delay ctx 0.1;
        let t1 = Engine.now_v ctx in
        let queued = Engine.receive_timeout ctx ~timeout:0. () in
        results := ("queued poll is Some", queued <> None) :: !results;
        results :=
          ("queued poll burned no time", Engine.now_v ctx = t1) :: !results)
  in
  ignore
    (Engine.spawn eng (fun ctx -> Engine.send ctx recv (Payload.Int 1)));
  Engine.run eng;
  check Alcotest.int "all polls ran" 4 (List.length !results);
  List.iter (fun (what, ok) -> check Alcotest.bool what true ok) !results

let test_ivar_read_timeout_zero_polls () =
  let eng = mk () in
  let iv = Engine.Ivar.create () in
  let results = ref [] in
  ignore
    (Engine.spawn eng (fun ctx ->
         let t0 = Engine.now_v ctx in
         let empty = Engine.Ivar.read_timeout ctx iv ~timeout:0. in
         results := ("unfilled poll is None", empty = None) :: !results;
         ignore (Engine.Ivar.try_fill iv 7);
         let filled = Engine.Ivar.read_timeout ctx iv ~timeout:0. in
         results := ("filled poll reads it", filled = Some 7) :: !results;
         results :=
           ("polling burned no time", Engine.now_v ctx = t0) :: !results));
  Engine.run eng;
  check Alcotest.int "all polls ran" 3 (List.length !results);
  List.iter (fun (what, ok) -> check Alcotest.bool what true ok) !results

(* ------------------------------------------------------------------ *)
(* Satellite: acquire_retry under site faults                         *)
(* ------------------------------------------------------------------ *)

let test_acquire_retry_deterministic_under_partition () =
  (* The requester's site is cut off from a voter majority at block start
     and healed mid-backoff: the first round(s) end [No_quorum], a later
     round wins. The whole dance — verdict and finish time — must be
     byte-identical across reruns of the same seed. *)
  let run_once () =
    let eng = mk ~seed:5 () in
    let sites = Sites.create eng ~names:[ "a"; "b"; "c" ] in
    let m = Majority.create eng ~nodes:3 ~sites:[ "a"; "b"; "c" ] () in
    Sites.partition sites ~left:[ "a" ] ~right:[ "b"; "c" ];
    let out = ref "unfinished" in
    ignore
      (Engine.spawn eng ~site:"a" (fun ctx ->
           let verdict =
             Majority.acquire_retry ctx m ~reply_timeout:0.05 ~retries:3
               ~backoff:0.02 ()
           in
           out :=
             Printf.sprintf "%s@%.9f"
               (match verdict with
               | Majority.Granted -> "granted"
               | Majority.Denied -> "denied"
               | Majority.No_quorum -> "no-quorum")
               (Engine.now_v ctx);
           Majority.shutdown m));
    Engine.after eng ~delay:0.12 (fun () ->
        Sites.heal sites ~left:[ "a" ] ~right:[ "b"; "c" ]);
    Engine.run eng;
    !out
  in
  let first = run_once () in
  check Alcotest.bool "eventually granted" true
    (String.length first >= 7 && String.sub first 0 7 = "granted");
  check Alcotest.string "same seed, byte-identical outcome" first (run_once ())

let test_denied_returns_without_consuming_retries () =
  (* Once a majority has explicitly denied, retrying cannot help; the
     verdict must come back without burning any of the (here enormous)
     backoff delays. *)
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let r2_verdict = ref Majority.No_quorum and r2_elapsed = ref infinity in
  ignore
    (Engine.spawn eng (fun ctx ->
         ignore (Majority.acquire ctx m ~reply_timeout:1.)));
  ignore
    (Engine.spawn eng ~start_delay:0.5 (fun ctx ->
         let t0 = Engine.now_v ctx in
         r2_verdict :=
           Majority.acquire_retry ctx m ~reply_timeout:1. ~retries:5
             ~backoff:100. ();
         r2_elapsed := Engine.now_v ctx -. t0;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "denied" true (!r2_verdict = Majority.Denied);
  check Alcotest.bool "no backoff burned" true (!r2_elapsed < 1.)

(* ------------------------------------------------------------------ *)
(* Epoch fencing                                                      *)
(* ------------------------------------------------------------------ *)

let test_stale_epoch_denied () =
  (* Regression for the fencing guard: without per-voter epoch floors a
     stale incarnation's request would be granted like any other. *)
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  Majority.fence m ~epoch:2;
  let stale = ref Majority.No_quorum and current = ref Majority.No_quorum in
  ignore
    (Engine.spawn eng (fun ctx ->
         stale := Majority.acquire_verdict_epoch ctx m ~epoch:1 ~reply_timeout:1.));
  ignore
    (Engine.spawn eng ~start_delay:0.5 (fun ctx ->
         current :=
           Majority.acquire_verdict_epoch ctx m ~epoch:2 ~reply_timeout:1.;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "below-floor request denied" true
    (!stale = Majority.Denied);
  check Alcotest.bool "current epoch acquirable" true
    (!current = Majority.Granted)

let test_fence_voids_stale_grants () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let old = ref Majority.No_quorum and next = ref Majority.No_quorum in
  ignore
    (Engine.spawn eng (fun ctx ->
         old := Majority.acquire_verdict_epoch ctx m ~epoch:1 ~reply_timeout:1.));
  Engine.after eng ~delay:0.5 (fun () -> Majority.fence m ~epoch:2);
  ignore
    (Engine.spawn eng ~start_delay:1. (fun ctx ->
         next :=
           Majority.acquire_verdict_epoch ctx m ~epoch:2 ~reply_timeout:1.;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "epoch-1 incarnation won first" true
    (!old = Majority.Granted);
  check Alcotest.bool "fence voids the dead incarnation's grant" true
    (!next = Majority.Granted)

(* ------------------------------------------------------------------ *)
(* Coordinator recovery                                               *)
(* ------------------------------------------------------------------ *)

let consensus_policy =
  {
    Concurrent.default_policy with
    Concurrent.sync =
      Concurrent.Consensus
        { nodes = 3; crashed = []; vote_delay = 0.; reply_timeout = 0.5 };
    timeout = 30.;
    sync_retries = 2;
    sync_backoff = 0.02;
  }

let test_supervised_clean_run () =
  let eng = mk () in
  let sites = Sites.create eng ~names:[ "s0"; "s1"; "s2" ] in
  let alts = [ Alternative.make (fun _ -> 42) ] in
  let rr = Concurrent.run_supervised eng ~policy:consensus_policy ~sites alts in
  check Alcotest.int "one incarnation" 1 rr.Concurrent.sr_incarnations;
  check Alcotest.int "epoch 1" 1 rr.Concurrent.sr_epoch;
  check Alcotest.bool "no recoveries" true (rr.Concurrent.sr_recoveries = []);
  check Alcotest.(option string) "runs on the first site" (Some "s0")
    rr.Concurrent.sr_site;
  match rr.Concurrent.sr_report.Concurrent.outcome with
  | Alt_block.Selected { value = 42; _ } -> ()
  | _ -> Alcotest.fail "expected Selected 42"

let test_coordinator_site_crash_recovers () =
  (* Crash the site hosting coordinator, children, and one voter mid-run.
     The watchdog must fence to epoch 2, restart from the checkpoint on a
     surviving site, and commit exactly one winner. *)
  let eng = mk ~seed:7 () in
  let sites = Sites.create eng ~names:[ "s0"; "s1"; "s2" ] in
  let alts =
    [
      Alternative.make ~name:"slow" (fun ctx ->
          Engine.delay ctx 1.;
          42);
    ]
  in
  Engine.after eng ~delay:0.5 (fun () -> Sites.crash sites "s0");
  let rr = Concurrent.run_supervised eng ~policy:consensus_policy ~sites alts in
  check Alcotest.int "two incarnations" 2 rr.Concurrent.sr_incarnations;
  check Alcotest.int "deciding epoch" 2 rr.Concurrent.sr_epoch;
  (match rr.Concurrent.sr_recoveries with
  | [ (_failed, _successor, 2) ] -> ()
  | _ -> Alcotest.fail "expected exactly one recovery, to epoch 2");
  (* Incarnation e lands on the (e-1) mod n-th surviving site: with s0
     dead the survivors are [s1; s2] and epoch 2 picks s2 — away from the
     crash either way. *)
  check Alcotest.(option string) "restarted away from the dead site"
    (Some "s2") rr.Concurrent.sr_site;
  (match rr.Concurrent.sr_report.Concurrent.outcome with
  | Alt_block.Selected { value = 42; _ } -> ()
  | _ -> Alcotest.fail "expected Selected 42");
  (* At-most-once across incarnations: one winner epoch-wide. *)
  let wins_in_final_epoch =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Sync_won { epoch = 2; _ } -> true
      | _ -> false)
  in
  check Alcotest.int "one Sync_won in the deciding epoch" 1 wins_in_final_epoch;
  check Alcotest.int "one Recovered traced" 1
    (Trace.count (Engine.trace eng) ~f:(function
      | Trace.Recovered { epoch = 2; _ } -> true
      | _ -> false));
  check Alcotest.int "everything reaped" 0 (Engine.live_count eng)

let () =
  Alcotest.run "sites"
    [
      ( "placement",
        [
          Alcotest.test_case "create validations" `Quick test_create_validations;
          Alcotest.test_case "placement rules" `Quick test_placement;
        ] );
      ( "faults",
        [
          Alcotest.test_case "crash kills residents" `Quick
            test_crash_kills_residents;
          Alcotest.test_case "partition validations" `Quick
            test_partition_validations;
          Alcotest.test_case "partition drops, heal restores" `Quick
            test_partition_drops_and_heal_restores;
        ] );
      ( "kill",
        [
          Alcotest.test_case "kill is idempotent" `Quick test_kill_idempotent;
          Alcotest.test_case "kill after natural exit" `Quick
            test_kill_after_natural_exit;
          Alcotest.test_case "kill racing natural exit" `Quick
            test_kill_racing_natural_exit;
        ] );
      ( "polling",
        [
          Alcotest.test_case "receive_timeout 0 polls" `Quick
            test_receive_timeout_zero_polls;
          Alcotest.test_case "ivar read_timeout 0 polls" `Quick
            test_ivar_read_timeout_zero_polls;
        ] );
      ( "consensus under site faults",
        [
          Alcotest.test_case "acquire_retry deterministic under partition"
            `Quick test_acquire_retry_deterministic_under_partition;
          Alcotest.test_case "denied consumes no retries" `Quick
            test_denied_returns_without_consuming_retries;
          Alcotest.test_case "stale epoch denied" `Quick test_stale_epoch_denied;
          Alcotest.test_case "fence voids stale grants" `Quick
            test_fence_voids_stale_grants;
        ] );
      ( "coordinator recovery",
        [
          Alcotest.test_case "clean supervised run" `Quick
            test_supervised_clean_run;
          Alcotest.test_case "site crash recovers on a survivor" `Quick
            test_coordinator_site_crash_recovers;
        ] );
    ]
