(* Coverage for the smaller surfaces: Mem helpers, payload/message
   printing and sizing, trace utilities, alternative constructors, and
   assorted accessors. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

(* ---------------- Mem ---------------- *)

let test_mem_requires_space () =
  let eng = Engine.create ~trace:false () in
  let raised = ref false in
  ignore
    (Engine.spawn eng (fun ctx ->
         try ignore (Mem.read_bytes ctx ~addr:0 ~len:1)
         with Invalid_argument _ -> raised := true));
  Engine.run eng;
  check Alcotest.bool "spaceless process rejected" true !raised

let test_mem_rw_and_charging () =
  let model = Cost_model.att_3b2 in
  let eng = Engine.create ~model ~trace:false () in
  let parent = Address_space.create ~size_hint:8192 (Engine.frame_store eng) model in
  let child = Address_space.fork parent in
  ignore (Address_space.drain_cost child);
  let finish = ref 0. in
  ignore
    (Engine.spawn eng ~space:child (fun ctx ->
         Mem.write_bytes ctx ~addr:0 (Bytes.of_string "xy");
         check Alcotest.string "read back" "xy"
           (Bytes.to_string (Mem.read_bytes ctx ~addr:0 ~len:2));
         finish := Engine.now_v ctx));
  Engine.run eng;
  (* The COW fault on the shared page must have cost one page copy. *)
  check Alcotest.bool "fault charged to the clock" true
    (Float.abs (!finish -. (1. /. 326.)) < 1e-9)

let test_mem_touch () =
  let model = Cost_model.uniform ~page_size:256 () in
  let eng = Engine.create ~model ~trace:false () in
  let parent = Address_space.create ~size_hint:1024 (Engine.frame_store eng) model in
  let child = Address_space.fork parent in
  ignore (Address_space.drain_cost child);
  ignore
    (Engine.spawn eng ~space:child (fun ctx ->
         Mem.touch ctx ~addr:0 ~len:1024));
  Engine.run eng;
  check Alcotest.int "all four pages privatised" 4 (Address_space.cow_copies child)

(* ---------------- Payload / Message ---------------- *)

let test_payload_sizes () =
  check Alcotest.int "unit" 1 (Payload.size_bytes Payload.Unit);
  check Alcotest.int "int" 8 (Payload.size_bytes (Payload.int 1));
  check Alcotest.int "string" (4 + 5) (Payload.size_bytes (Payload.str "hello"));
  check Alcotest.int "pair" (2 + 8 + 8)
    (Payload.size_bytes (Payload.pair (Payload.int 1) (Payload.int 2)));
  check Alcotest.int "list" (4 + 8 + 8)
    (Payload.size_bytes (Payload.List [ Payload.int 1; Payload.int 2 ]))

let test_payload_printing () =
  check Alcotest.string "pair" "(1, \"x\")"
    (Payload.to_string (Payload.pair (Payload.int 1) (Payload.str "x")));
  check Alcotest.string "list" "[1; 2]"
    (Payload.to_string (Payload.List [ Payload.int 1; Payload.int 2 ]));
  check Alcotest.string "bool" "true" (Payload.to_string (Payload.Bool true));
  check Alcotest.string "float" "1.5" (Payload.to_string (Payload.Float 1.5))

let test_payload_projections () =
  check Alcotest.int "get_int" 3 (Payload.get_int (Payload.int 3));
  check Alcotest.string "get_str" "s" (Payload.get_str (Payload.str "s"));
  check Alcotest.bool "get_pair" true
    (Payload.get_pair (Payload.pair Payload.Unit (Payload.int 1))
     = (Payload.Unit, Payload.Int 1));
  Alcotest.check_raises "shape mismatch" (Invalid_argument "Payload.get_int")
    (fun () -> ignore (Payload.get_int Payload.Unit))

let test_message_structure () =
  let m =
    Message.make ~sender:(Pid.of_int 1) ~dest:(Pid.of_int 2)
      ~predicate:Predicate.empty ~tag:"t" ~seq:5 (Payload.str "abc")
  in
  check Alcotest.bool "size includes header" true (Message.size_bytes m > 7);
  let printed = Format.asprintf "%a" Message.pp m in
  check Alcotest.bool "pp mentions endpoints" true
    (String.length printed > 0)

(* ---------------- Trace ---------------- *)

let test_trace_disabled_records_nothing () =
  let t = Trace.create ~enabled:false () in
  Trace.record t ~time:1. (Trace.Note "x");
  check Alcotest.int "empty" 0 (List.length (Trace.events t));
  Trace.set_enabled t true;
  Trace.record t ~time:2. (Trace.Note "y");
  check Alcotest.int "recorded once enabled" 1 (List.length (Trace.events t));
  check Alcotest.bool "enabled flag" true (Trace.enabled t)

let test_trace_query_helpers () =
  let t = Trace.create () in
  Trace.record t ~time:1. (Trace.Started (Pid.of_int 0));
  Trace.record t ~time:2. (Trace.Note "a");
  Trace.record t ~time:3. (Trace.Note "b");
  check Alcotest.int "count notes" 2
    (Trace.count t ~f:(function Trace.Note _ -> true | _ -> false));
  (match Trace.find_all t ~f:(function Trace.Note _ -> true | _ -> false) with
  | [ (2., Trace.Note "a"); (3., Trace.Note "b") ] -> ()
  | _ -> Alcotest.fail "find_all order");
  Trace.clear t;
  check Alcotest.int "cleared" 0 (List.length (Trace.events t))

let test_trace_event_printing () =
  let printed e = Format.asprintf "%a" Trace.pp_event e in
  check Alcotest.string "note" "note: hi" (printed (Trace.Note "hi"));
  check Alcotest.string "start" "start P3" (printed (Trace.Started (Pid.of_int 3)));
  check Alcotest.bool "fate" true
    (printed (Trace.Fate { pid = Pid.of_int 1; fate = Predicate.Completed })
     = "fate P1 = completed")

(* ---------------- Alternative constructors ---------------- *)

let in_process eng f =
  let result = ref None in
  ignore (Engine.spawn eng ~cloneable:false (fun ctx -> result := Some (f ctx)));
  Engine.run eng;
  Option.get !result

let test_alternative_fixed_and_failing () =
  let eng = Engine.create ~trace:false () in
  let v =
    in_process eng (fun ctx ->
        let alt = Alternative.fixed ~cost:1.5 "v" in
        let t0 = Engine.now_v ctx in
        let v = alt.Alternative.body ctx in
        check cf "cost consumed" 1.5 (Engine.now_v ctx -. t0);
        v)
  in
  check Alcotest.string "value" "v" v;
  let eng = Engine.create ~trace:false () in
  let raised =
    in_process eng (fun ctx ->
        let alt : unit Alternative.t = Alternative.failing ~cost:0.5 () in
        try
          alt.Alternative.body ctx;
          false
        with Alternative.Failed _ -> true)
  in
  check Alcotest.bool "failing raises Failed" true raised

let test_alternative_default_guard () =
  let alt = Alternative.make (fun _ -> 0) in
  let eng = Engine.create ~trace:false () in
  let g = in_process eng (fun ctx -> alt.Alternative.guard ctx) in
  check Alcotest.bool "default guard open" true g;
  check Alcotest.string "default name" "alt" alt.Alternative.name

(* ---------------- misc engine accessors ---------------- *)

let test_logical_of_plain_process () =
  let eng = Engine.create ~trace:false () in
  let pid = Engine.spawn eng (fun _ -> ()) in
  check Alcotest.bool "logical = physical for plain processes" true
    (Engine.logical_of eng pid = Some pid);
  check Alcotest.bool "unknown pid" true
    (Engine.logical_of eng (Pid.of_int 999) = None)

let test_engine_accessors () =
  let model = Cost_model.hp_9000_350 in
  let eng = Engine.create ~model ~trace:false () in
  check Alcotest.string "model name" model.Cost_model.name
    (Engine.model eng).Cost_model.name;
  check Alcotest.int "store page size" model.Cost_model.page_size
    (Frame_store.page_size (Engine.frame_store eng));
  check cf "clock starts at zero" 0. (Engine.now eng);
  check Alcotest.int "no events processed yet" 0
    (Engine.stats_events_processed eng)

let test_source_name_and_analytic_pp () =
  let eng = Engine.create ~trace:false () in
  let s = Source.create eng ~name:"line-printer" in
  check Alcotest.string "name" "line-printer" (Source.name s);
  let row = List.hd (Analytic.table_4_3 ()) in
  let printed = Format.asprintf "%a" Analytic.pp_row row in
  check Alcotest.bool "row pp mentions PI" true (String.length printed > 10)

let test_heap_brk_monotone () =
  let model = Cost_model.uniform ~page_size:256 () in
  let sp = Address_space.create (Frame_store.create ~page_size:256) model in
  let h = Heap.create sp in
  let b0 = Heap.brk h in
  ignore (Heap.alloc h 100);
  check Alcotest.bool "brk advanced" true (Heap.brk h >= b0 + 100);
  check Alcotest.bool "space accessor" true (Heap.space h == sp)

let () =
  Alcotest.run "misc"
    [
      ( "mem",
        [
          Alcotest.test_case "requires a space" `Quick test_mem_requires_space;
          Alcotest.test_case "rw and cost charging" `Quick test_mem_rw_and_charging;
          Alcotest.test_case "touch" `Quick test_mem_touch;
        ] );
      ( "payload/message",
        [
          Alcotest.test_case "sizes" `Quick test_payload_sizes;
          Alcotest.test_case "printing" `Quick test_payload_printing;
          Alcotest.test_case "projections" `Quick test_payload_projections;
          Alcotest.test_case "message structure" `Quick test_message_structure;
        ] );
      ( "trace",
        [
          Alcotest.test_case "disable/enable" `Quick test_trace_disabled_records_nothing;
          Alcotest.test_case "query helpers" `Quick test_trace_query_helpers;
          Alcotest.test_case "event printing" `Quick test_trace_event_printing;
        ] );
      ( "alternative",
        [
          Alcotest.test_case "fixed and failing" `Quick test_alternative_fixed_and_failing;
          Alcotest.test_case "default guard" `Quick test_alternative_default_guard;
        ] );
      ( "accessors",
        [
          Alcotest.test_case "logical_of" `Quick test_logical_of_plain_process;
          Alcotest.test_case "engine accessors" `Quick test_engine_accessors;
          Alcotest.test_case "source name / analytic pp" `Quick
            test_source_name_and_analytic_pp;
          Alcotest.test_case "heap brk" `Quick test_heap_brk_monotone;
        ] );
    ]
