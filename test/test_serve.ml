(* Tests for the request-driven serving layer (lib/serve): workload
   determinism, GCRA quota exactness at virtual-time boundaries, the
   zero-timeout pure polls a shed path issues, batch formation, and the
   end-to-end determinism contract (replay-identical, jobs-1 = jobs-N). *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Workload generation.                                                *)

let test_workload_deterministic () =
  let wl = { Workload.default with Workload.wl_requests = 500 } in
  let a = Workload.generate wl and b = Workload.generate wl in
  check Alcotest.bool "same seed, same stream" true (a = b);
  Array.iteri
    (fun i (rq : Workload.request) ->
      check Alcotest.int "dense ids" i rq.Workload.rq_id;
      if i > 0 then
        check Alcotest.bool "arrivals nondecreasing" true
          (rq.Workload.rq_arrival >= a.(i - 1).Workload.rq_arrival);
      check Alcotest.bool "tenant in range" true
        (rq.Workload.rq_tenant >= 0
        && rq.Workload.rq_tenant < wl.Workload.wl_tenants);
      check Alcotest.bool "work in [1, cap]" true
        (rq.Workload.rq_work >= 1.
        && rq.Workload.rq_work <= wl.Workload.wl_tail_cap))
    a;
  let c = Workload.generate { wl with Workload.wl_seed = 2 } in
  check Alcotest.bool "different seed, different stream" false (a = c)

(* ------------------------------------------------------------------ *)
(* Quota exactness.

   The GCRA stores an integer admission counter, never a float
   accumulator, so at binary-exact virtual-time boundaries the
   admit/shed pattern is bit-exact arbitrarily far into the stream.
   rate = 1024 makes every k/1024 and k/2048 arrival time exact in
   binary floating point: any drift at all changes the admission
   count. *)

let test_quota_no_drift_over_1e6 () =
  let n = 1_000_000 in
  (* Arrivals exactly at the refill boundary: one token refills per
     step, so every single request must be admitted — the millionth
     decision compares k >= k with no accumulated error. *)
  let q = Quota.create ~rate:1024. ~burst:1 in
  for k = 0 to n - 1 do
    ignore (Quota.admit q ~now:(float_of_int k /. 1024.))
  done;
  check Alcotest.int "boundary arrivals all admitted" n (Quota.admitted q);
  (* Arrivals at half the refill period: after the initial burst token
     the pattern must alternate admit/shed forever, exactly. *)
  let q = Quota.create ~rate:1024. ~burst:1 in
  let last_sheds = ref [] in
  for k = 0 to n - 1 do
    let ok = Quota.admit q ~now:(float_of_int k /. 2048.) in
    if k >= n - 4 then last_sheds := ok :: !last_sheds
  done;
  check Alcotest.int "half-period arrivals alternate exactly" (n / 2)
    (Quota.admitted q);
  check
    Alcotest.(list bool)
    "tail of the stream still alternates" [ true; false; true; false ]
    (List.rev !last_sheds)

let test_quota_burst_and_refusal () =
  let q = Quota.create ~rate:10. ~burst:3 in
  let okays = List.init 5 (fun _ -> Quota.admit q ~now:0.) in
  check
    Alcotest.(list bool)
    "burst then refusal" [ true; true; true; false; false ] okays;
  check Alcotest.bool "shed leaves no tokens" true (Quota.tokens q ~now:0. < 1.);
  (* Sheds must not consume anything: a full refill period later one
     token is back, regardless of how many refusals happened. *)
  check Alcotest.bool "refill after shed burst" true (Quota.admit q ~now:0.1)

(* Composed quota classes (tenant x scenario x global): a request is
   admitted only when every class conforms, and a composite shed
   charges none of them — the all-or-nothing contract admission relies
   on so one starved class cannot silently drain the others. *)

let test_quota_classes_all_or_nothing () =
  let tenant = Quota.create ~rate:10. ~burst:2 in
  let global = Quota.create ~rate:10. ~burst:1 in
  check Alcotest.bool "both conform: admitted" true
    (Quota.admit_all [ tenant; global ] ~now:0.);
  (* The global bucket is now empty; the tenant still holds a token. *)
  check Alcotest.bool "one class starved: shed" false
    (Quota.admit_all [ tenant; global ] ~now:0.);
  check Alcotest.int "composite shed charged the tenant nothing" 1
    (Quota.admitted tenant);
  check Alcotest.bool "tenant token survived the composite shed" true
    (Quota.tokens tenant ~now:0. >= 1.);
  (* After a global refill period both conform again — the shed left no
     debt anywhere. *)
  check Alcotest.bool "refill readmits" true
    (Quota.admit_all [ tenant; global ] ~now:0.1)

let test_quota_classes_no_drift_over_1e6 () =
  (* The PR 8 drift test, lifted to the composed form: three classes at
     the same binary-exact rate, arrivals exactly on the refill
     boundary. Every arrival must pass all three, a million times, with
     the admit counts in lockstep — any float drift in any class breaks
     the equality. *)
  let n = 1_000_000 in
  let mk () = Quota.create ~rate:1024. ~burst:1 in
  let a = mk () and b = mk () and c = mk () in
  for k = 0 to n - 1 do
    ignore (Quota.admit_all [ a; b; c ] ~now:(float_of_int k /. 1024.))
  done;
  List.iter
    (fun q -> check Alcotest.int "boundary arrivals all admitted" n
        (Quota.admitted q))
    [ a; b; c ];
  (* Half-period arrivals with one tight class: the tight bucket
     alternates admit/shed exactly, and the loose buckets must show
     exactly the same count — composite sheds never charge them. *)
  let tight = mk () in
  let loose = Quota.create ~rate:4096. ~burst:8 in
  for k = 0 to n - 1 do
    ignore (Quota.admit_all [ loose; tight ] ~now:(float_of_int k /. 2048.))
  done;
  check Alcotest.int "tight class alternates exactly" (n / 2)
    (Quota.admitted tight);
  check Alcotest.int "loose class charged only on admits" (n / 2)
    (Quota.admitted loose)

(* ------------------------------------------------------------------ *)
(* Zero-timeout pure polls inside an admission-shed path.

   A frontend that sheds a request typically drains without blocking:
   poll for a cancel message, poll the response ivar it will never
   fill. Both [~timeout:0.] forms must return immediately — no parking,
   no virtual-time advance — whether or not something is queued. *)

let test_timeout_zero_polls_in_shed_path () =
  let eng = Engine.create ~trace:false () in
  let quota = Quota.create ~rate:10. ~burst:1 in
  let polled = ref [] in
  let frontend_ready = Engine.Ivar.create () in
  let frontend =
    Engine.spawn eng (fun ctx ->
        ignore (Engine.Ivar.try_fill frontend_ready ());
        (* Two requests arrive at the same virtual instant; the bucket
           holds one token, so the second is shed. *)
        for _ = 1 to 2 do
          let m = Engine.receive ctx ~tag:"req" () in
          let now = Engine.now_v ctx in
          if Quota.admit quota ~now then
            polled := `Admitted (Payload.get_int m.Message.payload) :: !polled
          else begin
            (* The shed path: pure polls only, never a park. *)
            let t0 = Engine.now_v ctx in
            let cancel = Engine.receive_timeout ctx ~tag:"cancel" ~timeout:0. () in
            let iv = Engine.Ivar.create () in
            let unfilled = Engine.Ivar.read_timeout ctx iv ~timeout:0. in
            ignore (Engine.Ivar.try_fill iv 7);
            let filled = Engine.Ivar.read_timeout ctx iv ~timeout:0. in
            let stray = Engine.receive_timeout ctx ~tag:"req" ~timeout:0. () in
            check (Alcotest.float 0.) "polls do not advance virtual time" t0
              (Engine.now_v ctx);
            polled :=
              `Shed
                ( Option.is_some cancel,
                  unfilled,
                  filled,
                  Option.map (fun m -> Payload.get_int m.Message.payload) stray )
              :: !polled
          end
        done)
  in
  ignore
    (Engine.spawn eng (fun ctx ->
        ignore (Engine.Ivar.read ctx frontend_ready);
        Engine.send ctx ~tag:"req" frontend (Payload.int 1);
        Engine.send ctx ~tag:"req" frontend (Payload.int 2)));
  Engine.run eng;
  match List.rev !polled with
  | [ `Admitted 1; `Shed (cancel, unfilled, filled, stray) ] ->
      check Alcotest.bool "no cancel queued" false cancel;
      check (Alcotest.option Alcotest.int) "unfilled ivar polls None" None
        unfilled;
      check (Alcotest.option Alcotest.int) "filled ivar polls Some" (Some 7)
        filled;
      check (Alcotest.option Alcotest.int) "no third request queued" None stray
  | _ -> Alcotest.fail "expected one admitted then one shed request"

(* ------------------------------------------------------------------ *)
(* Batch formation and honest shedding.                                *)

let small_wl = { Workload.default with Workload.wl_requests = 300 }

let answered (r : Server.result) =
  r.Server.served + r.Server.degraded + r.Server.recovered + r.Server.failed
  + r.Server.shed

let test_batch_invariants () =
  let r = Server.run small_wl Server.default in
  check Alcotest.int "every request answered" small_wl.Workload.wl_requests
    (answered r);
  check Alcotest.int "default config never degrades" 0
    (r.Server.degraded + r.Server.recovered + r.Server.shed_overload);
  let requests = Workload.generate small_wl in
  Array.iter
    (fun (bs : Server.batch_stat) ->
      check Alcotest.bool "batch occupancy within bound" true
        (bs.Server.bs_size >= 1
        && bs.Server.bs_size <= Server.default.Server.sv_max_batch);
      check Alcotest.bool "dispatch after close" true
        (bs.Server.bs_start >= bs.Server.bs_close);
      check Alcotest.bool "service takes time" true
        (bs.Server.bs_done > bs.Server.bs_start))
    r.Server.batches;
  Array.iter
    (fun (rs : Server.response) ->
      let rq = requests.(rs.Server.rs_id) in
      match rs.Server.rs_verdict with
      | Server.Rejected (Server.Quota_exhausted { tokens }) ->
          check Alcotest.int "rejections carry no batch" (-1) rs.Server.rs_batch;
          check Alcotest.bool "honest refusal: bucket really was empty" true
            (tokens < 1.)
      | Server.Rejected (Server.Overload _) ->
          Alcotest.fail "ladder disabled: no overload sheds possible"
      | _ ->
          check Alcotest.bool "completion after arrival" true
            (rs.Server.rs_completion > rq.Workload.rq_arrival);
          check Alcotest.bool "latency consistent" true
            (Float.abs
               (rs.Server.rs_latency
               -. (rs.Server.rs_completion -. rq.Workload.rq_arrival))
            < 1e-9))
    r.Server.responses;
  check Alcotest.bool "healthy run has no violations" true
    (r.Server.violations = [])

let test_starved_quota_sheds_honestly () =
  let sv =
    { Server.default with Server.sv_quota_rate = 0.01; sv_quota_burst = 1 }
  in
  let r = Server.run small_wl sv in
  check Alcotest.bool "starved quota sheds most of the stream" true
    (r.Server.shed > small_wl.Workload.wl_requests / 2);
  check Alcotest.int "every request still answered"
    small_wl.Workload.wl_requests (answered r)

let test_starved_quota_classes_shed_honestly () =
  (* A tight global class behind generous tenant buckets: the composite
     must shed most of the stream, name the binding constraint in the
     verdict, and the response census must still balance. *)
  let sv =
    { Server.default with Server.sv_global_rate = 1.; sv_global_burst = 1 }
  in
  let r = Server.run small_wl sv in
  check Alcotest.bool "starved global class sheds most of the stream" true
    (r.Server.shed > small_wl.Workload.wl_requests / 2);
  check Alcotest.int "every request still answered"
    small_wl.Workload.wl_requests (answered r);
  Array.iter
    (fun (rs : Server.response) ->
      match rs.Server.rs_verdict with
      | Server.Rejected (Server.Quota_exhausted { tokens }) ->
          check Alcotest.bool "refusal names the binding (empty) class" true
            (tokens < 1.)
      | _ -> ())
    r.Server.responses

(* ------------------------------------------------------------------ *)
(* The determinism contract, end to end.                               *)

let test_replay_and_jobs_identical () =
  let sv = { Server.default with Server.sv_jobs = 3 } in
  let d3 = Server.digest (Server.run small_wl sv) in
  let d3' = Server.digest (Server.run small_wl sv) in
  let d1 = Server.digest (Server.run small_wl { sv with Server.sv_jobs = 1 }) in
  check Alcotest.bool "replay is byte-identical" true (d3 = d3');
  check Alcotest.bool "jobs-1 = jobs-3" true (d1 = d3);
  let other =
    Server.digest (Server.run { small_wl with Workload.wl_seed = 99 } sv)
  in
  check Alcotest.bool "different seed, different digest" false (d3 = other)

let test_sanitized_run_stays_clean () =
  let sv = { Server.default with Server.sv_sanitize = true } in
  let r = Server.run { small_wl with Workload.wl_requests = 120 } sv in
  check Alcotest.bool "sanitized serving run flags nothing" true
    (r.Server.violations = [])

let test_bench_record_schema () =
  let sv = Server.default in
  let wl = { small_wl with Workload.wl_requests = 150 } in
  let r, m, v = Servebench.run_verified wl sv in
  check Alcotest.bool "verification passes" true
    (v.Servebench.v_replay_identical && v.Servebench.v_jobs_identical);
  check Alcotest.int "occupancy histogram covers every batch"
    m.Servebench.m_batches
    (Array.fold_left ( + ) 0 m.Servebench.m_occupancy);
  check Alcotest.int "metrics count what the server counted"
    (r.Server.served + r.Server.failed)
    (m.Servebench.m_served + m.Servebench.m_failed);
  check Alcotest.int "degraded/recovered counters flow through" 0
    (m.Servebench.m_degraded + m.Servebench.m_recovered);
  let pc = Servebench.measure_pool_cost ~jobs:sv.Server.sv_jobs in
  match Servebench.validate (Servebench.to_json wl sv m v pc) with
  | Ok n ->
      check Alcotest.int "all schema fields present"
        (List.length Servebench.required_fields)
        n
  | Error missing ->
      Alcotest.fail ("missing fields: " ^ String.concat ", " missing)

let () =
  Alcotest.run "serve"
    [
      ( "workload",
        [
          Alcotest.test_case "seeded generation is deterministic" `Quick
            test_workload_deterministic;
        ] );
      ( "quota",
        [
          Alcotest.test_case "no drift across 10^6 boundary arrivals" `Quick
            test_quota_no_drift_over_1e6;
          Alcotest.test_case "burst then refusal then refill" `Quick
            test_quota_burst_and_refusal;
          Alcotest.test_case "composed classes are all-or-nothing" `Quick
            test_quota_classes_all_or_nothing;
          Alcotest.test_case "composed classes: no drift across 10^6" `Quick
            test_quota_classes_no_drift_over_1e6;
        ] );
      ( "shed path",
        [
          Alcotest.test_case "zero-timeout polls never park" `Quick
            test_timeout_zero_polls_in_shed_path;
        ] );
      ( "server",
        [
          Alcotest.test_case "batch and response invariants" `Quick
            test_batch_invariants;
          Alcotest.test_case "starved quota sheds honestly" `Quick
            test_starved_quota_sheds_honestly;
          Alcotest.test_case "starved quota classes shed honestly" `Quick
            test_starved_quota_classes_shed_honestly;
          Alcotest.test_case "replay identical, jobs-1 = jobs-N" `Quick
            test_replay_and_jobs_identical;
          Alcotest.test_case "sanitized run stays clean" `Quick
            test_sanitized_run_stays_clean;
          Alcotest.test_case "bench record satisfies its schema" `Quick
            test_bench_record_schema;
        ] );
    ]
