(* Tests for the sharded engine: the byte-identity contract (shards-1 =
   shards-N) over the run/fuzz/sites matrices with and without the online
   sanitizer, barrier ordering under zero lookahead, per-process RNG
   stream independence from shard residency, exception propagation
   through the persistent shared pool, and the batch-join epoch guard
   regression (the per-shard counter that falsely joins at shards >= 2,
   kept compilable behind [debug_shard_local_epoch]). *)

let check = Alcotest.check

(* ---------------- matrix byte-identity ---------------- *)

(* Render one checked invariant run to a digest line: everything the
   report exposes plus the engine's canonical event count. Any scheduling
   divergence between shard counts lands in at least one field. *)
let render_invariant_run ((rr : Invariants.run), vs) =
  let rep = rr.Invariants.report in
  let outcome =
    match rep.Concurrent.outcome with
    | Alt_block.Selected { index; value } ->
      Printf.sprintf "selected(%d)=%d" index value
    | Alt_block.Block_failed r -> Printf.sprintf "failed(%S)" r
  in
  Printf.sprintf "%s/%s/%d: %s elapsed=%.9f wasted=%.9f events=%d viols=[%s]"
    rr.Invariants.scenario.Invariants.sc_name
    (Concurrent.describe rr.Invariants.policy)
    rr.Invariants.seed outcome rep.Concurrent.elapsed rep.Concurrent.wasted_cpu
    (Engine.stats_events_processed rr.Invariants.engine)
    (String.concat "; "
       (List.map (fun v -> Format.asprintf "%a" Report.pp_violation v) vs))

let sweep_lines ~sanitize ~shards =
  let cells = Invariants.matrix_cells ~seeds:1 () in
  Invariants.run_cells ~sanitize ~shards cells
  |> Array.to_list
  |> List.map render_invariant_run

let test_run_matrix_byte_identity () =
  List.iter
    (fun sanitize ->
      let base = sweep_lines ~sanitize ~shards:1 in
      List.iter
        (fun shards ->
          check
            Alcotest.(list string)
            (Printf.sprintf "run matrix shards-1 = shards-%d (sanitize=%b)"
               shards sanitize)
            base
            (sweep_lines ~sanitize ~shards))
        [ 2; 4 ])
    [ false; true ]

let fuzz_lines ~sanitize ~shards =
  let campaigns =
    List.filteri (fun i _ -> i < 3) Fuzz.default_campaigns
  in
  let r =
    Fuzz.run ~seeds:1
      ~scenarios:[ List.hd Invariants.default_scenarios ]
      ~campaigns ~sanitize ~shards ()
  in
  r.Fuzz.lines
  @ List.map (fun v -> Format.asprintf "%a" Report.pp_violation v) r.Fuzz.violations

let test_fuzz_matrix_byte_identity () =
  List.iter
    (fun sanitize ->
      let base = fuzz_lines ~sanitize ~shards:1 in
      List.iter
        (fun shards ->
          check
            Alcotest.(list string)
            (Printf.sprintf "fuzz matrix shards-1 = shards-%d (sanitize=%b)"
               shards sanitize)
            base
            (fuzz_lines ~sanitize ~shards))
        [ 2; 4 ])
    [ false; true ]

let sites_lines ~sanitize ~shards =
  let campaigns =
    List.filteri (fun i _ -> i < 2) Sitefuzz.default_campaigns
  in
  let r = Sitefuzz.run ~seeds:1 ~campaigns ~sanitize ~shards () in
  r.Sitefuzz.lines
  @ List.map
      (fun v -> Format.asprintf "%a" Report.pp_violation v)
      r.Sitefuzz.violations

let test_sites_matrix_byte_identity () =
  List.iter
    (fun sanitize ->
      let base = sites_lines ~sanitize ~shards:1 in
      List.iter
        (fun shards ->
          check
            Alcotest.(list string)
            (Printf.sprintf "sites matrix shards-1 = shards-%d (sanitize=%b)"
               shards sanitize)
            base
            (sites_lines ~sanitize ~shards))
        [ 2; 4 ])
    [ false; true ]

(* ---------------- zero-lookahead barrier ordering ---------------- *)

(* The tightest barrier window: the uniform model's msg_latency is 0, so
   the exchange horizon collapses to the earliest local event time.
   Every send below crosses sites (and so, at shards-4, shards); the
   whole storm happens at virtual time 0 where any ordering slip between
   a staged flush and a local event is visible in the trace. *)
let ring_trace ~shards =
  let eng = Engine.create ~seed:11 ~shards () in
  let n = 4 in
  let pids = Array.of_list (Engine.fresh_pids eng n) in
  for i = 0 to n - 1 do
    ignore
      (Engine.spawn eng ~pid:pids.(i) ~cloneable:false ~oblivious:true
         ~name:(Printf.sprintf "r%d" i)
         ~site:(Printf.sprintf "s%d" i)
         (fun ctx ->
           for round = 1 to 3 do
             Engine.send ctx ~tag:"ring"
               pids.((i + 1) mod n)
               (Payload.int ((i * 100) + round))
           done;
           let rec drain k =
             if k > 0 then begin
               ignore (Engine.receive ctx ~tag:"ring" ());
               drain (k - 1)
             end
           in
           drain 3))
  done;
  Engine.run eng;
  (Trace.to_jsonl (Engine.trace eng), eng)

let test_zero_lookahead_ordering () =
  let base, _ = ring_trace ~shards:1 in
  let sharded, eng = ring_trace ~shards:4 in
  check Alcotest.string "ring trace shards-1 = shards-4" base sharded;
  check Alcotest.bool "the ring actually crossed shards" true
    (Engine.stats_cross_shard_msgs eng > 0);
  check Alcotest.bool "barrier exchanges happened" true
    (Engine.stats_barriers eng > 0);
  check Alcotest.int "residency counters aggregate exactly"
    (Engine.stats_events_processed eng)
    (Array.fold_left ( + ) 0 (Engine.stats_shard_events eng))

(* ---------------- per-process RNG streams ---------------- *)

(* Streams are keyed by (engine seed, pid), never by shard residency:
   the draws each process sees must not depend on the shard count, and
   distinct processes must not share a stream. *)
let rng_draws ~shards =
  let eng = Engine.create ~seed:77 ~shards () in
  let n = 6 in
  let draws = Array.make n [] in
  for i = 0 to n - 1 do
    ignore
      (Engine.spawn eng ~cloneable:false ~oblivious:true
         ~name:(Printf.sprintf "g%d" i)
         ~site:(Printf.sprintf "s%d" (i mod 4))
         (fun ctx ->
           for _ = 1 to 4 do
             draws.(i) <- Engine.random_bits ctx :: draws.(i);
             Engine.delay ctx 0.001
           done))
  done;
  Engine.run eng;
  Array.map List.rev draws

let test_rng_shard_independent () =
  let d1 = rng_draws ~shards:1 in
  let d4 = rng_draws ~shards:4 in
  check Alcotest.bool "per-process draws identical at shards 1 and 4" true
    (d1 = d4);
  Array.iteri
    (fun i di ->
      Array.iteri
        (fun j dj ->
          if i < j then
            check Alcotest.bool
              (Printf.sprintf "processes %d and %d draw distinct streams" i j)
              false (di = dj))
        d1)
    d1

(* ---------------- shared-pool exception propagation ---------------- *)

exception Boom of int

let test_shared_pool_raises_lowest_index () =
  (* Several jobs raise; the caller must see the lowest-indexed one, and
     the persistent pool must survive to serve the next batch. *)
  let raised =
    try
      ignore
        (Parallel.map_indexed_shared ~jobs:4
           (fun i -> if i mod 3 = 1 then raise (Boom i) else i)
           10);
      None
    with Boom i -> Some i
  in
  check Alcotest.(option int) "lowest-indexed failure propagates" (Some 1)
    raised;
  let again = Parallel.map_indexed_shared ~jobs:4 (fun i -> i * i) 8 in
  check
    Alcotest.(array int)
    "pool still serves after a raising batch"
    (Array.init 8 (fun i -> i * i))
    again

(* ---------------- the batch-join epoch guard ----------------

   The PR that introduced sharding had to re-derive the join guard's
   epoch: under sharding the tempting per-shard execution counter is
   NOT equivalent to the global one. Construction: src (site s0) sends
   m1 and parks on an ivar; wake (site s1) fills the ivar in its own
   start event, resuming src synchronously, and src sends m2 at the
   same flush time with no intervening push. A filler on s1 that parks
   first aligns the two shards' execution counters, so the shard-local
   epoch at m2 (counted on s1's shard) coincides with the value
   recorded at m1 (counted on s0's) — the broken guard joins a batch
   the global order saw two events interleave into. *)

let epoch_guard_run ~shards ~debug =
  let eng = Engine.create ~shards ~debug_shard_local_epoch:debug () in
  let got = ref [] in
  let receiver =
    Engine.spawn eng ~cloneable:false ~oblivious:true ~name:"sink" ~site:"s0"
      (fun ctx ->
        for _ = 1 to 2 do
          got := (Engine.receive ctx ()).Message.payload :: !got
        done)
  in
  let iv = Engine.Ivar.create () in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"src" ~site:"s0" (fun ctx ->
         Engine.send ctx receiver (Payload.int 1);
         ignore (Engine.Ivar.read ctx iv);
         Engine.send ctx receiver (Payload.int 2)));
  (* Parks forever: one counted event on s1's shard, no pushes. *)
  ignore
    (Engine.spawn eng ~cloneable:false ~oblivious:true ~name:"filler"
       ~site:"s1" (fun ctx -> ignore (Engine.receive ctx ())));
  ignore
    (Engine.spawn eng ~cloneable:false ~oblivious:true ~name:"wake" ~site:"s1"
       (fun _ctx -> ignore (Engine.Ivar.try_fill iv 0)));
  Engine.run eng;
  let batches =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Delivered_batch _ -> true
      | _ -> false)
  in
  let payloads =
    List.rev_map (function Payload.Int i -> i | _ -> -1) !got
  in
  (Trace.to_jsonl (Engine.trace eng), batches, payloads)

let test_epoch_guard_regression () =
  let base_trace, base_batches, base_got = epoch_guard_run ~shards:1 ~debug:false in
  check Alcotest.int "shards-1: the interleaved event split the batch" 0
    base_batches;
  check Alcotest.(list int) "shards-1: FIFO" [ 1; 2 ] base_got;
  (* At one shard the local counter IS the global counter: the knob must
     change nothing. *)
  let t1d, _, _ = epoch_guard_run ~shards:1 ~debug:true in
  check Alcotest.string "knob is inert at shards-1" base_trace t1d;
  (* The fixed guard: shards-2 is byte-identical to shards-1. *)
  let t2, _, _ = epoch_guard_run ~shards:2 ~debug:false in
  check Alcotest.string "global epoch: shards-2 = shards-1" base_trace t2;
  (* The regression: the per-shard epoch falsely joins at shards-2 — the
     divergence this test exists to pin. *)
  let t2d, broken_batches, broken_got = epoch_guard_run ~shards:2 ~debug:true in
  check Alcotest.int "shard-local epoch falsely joins the batch" 1
    broken_batches;
  check Alcotest.bool "and the trace diverges from shards-1" false
    (base_trace = t2d);
  (* FIFO survives even the false join — the divergence is in delivery
     batching, which is why the guard needs the trace to catch it. *)
  check Alcotest.(list int) "payload FIFO survives regardless" [ 1; 2 ]
    broken_got

(* ---------------- engine argument validation ---------------- *)

let test_create_rejects_bad_shards () =
  check Alcotest.bool "shards:0 rejected" true
    (try
       ignore (Engine.create ~shards:0 ());
       false
     with Invalid_argument _ -> true)

let () =
  Alcotest.run "shard"
    [
      ( "byte-identity",
        [
          Alcotest.test_case "run matrix, shards 1/2/4, +/- sanitizer" `Quick
            test_run_matrix_byte_identity;
          Alcotest.test_case "fuzz matrix, shards 1/2/4, +/- sanitizer" `Quick
            test_fuzz_matrix_byte_identity;
          Alcotest.test_case "sites matrix, shards 1/2/4, +/- sanitizer"
            `Quick test_sites_matrix_byte_identity;
          Alcotest.test_case "zero-lookahead ring ordering" `Quick
            test_zero_lookahead_ordering;
        ] );
      ( "rng",
        [
          Alcotest.test_case "streams independent of shard residency" `Quick
            test_rng_shard_independent;
        ] );
      ( "pool",
        [
          Alcotest.test_case "lowest-indexed exception, pool survives" `Quick
            test_shared_pool_raises_lowest_index;
        ] );
      ( "epoch-guard",
        [
          Alcotest.test_case "per-shard epoch diverges; global one holds"
            `Quick test_epoch_guard_regression;
          Alcotest.test_case "create validates shards" `Quick
            test_create_rejects_bad_shards;
        ] );
    ]
