(* Cross-library integration tests: alternative blocks over sources,
   recovery blocks with consensus and fault injection, speculative IPC
   interacting with block execution, Prolog end-to-end. *)

let check = Alcotest.check

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"it-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "root did not complete"

(* Alternatives that write to a teletype: only the winner's output may
   appear, flushed when the block commits. *)
let test_block_gates_source_output () =
  let eng = Engine.create ~trace:false () in
  let tty = Source.create eng ~name:"tty" in
  let speak line cost =
    Alternative.make ~name:line (fun ctx ->
        Source.write ctx tty ("start " ^ line);
        Engine.delay ctx cost;
        Source.write ctx tty ("done " ^ line);
        line)
  in
  let r = in_process eng (fun ctx -> Concurrent.run ctx [ speak "A" 3.; speak "B" 1. ]) in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = "B"; _ } -> ()
  | _ -> Alcotest.fail "B must win");
  let lines = List.map (fun (_, _, l) -> l) (Source.output tty) in
  check Alcotest.(list string) "only the winner's lines, in order"
    [ "start B"; "done B" ] lines;
  check Alcotest.bool "loser's lines discarded" true (Source.discarded tty > 0)

(* A full distributed recovery block: faulty primary, consensus sync with a
   crashed voter, source output gated. *)
let test_distributed_recovery_block_end_to_end () =
  let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
  let tty = Source.create eng ~name:"console" in
  let version name cost result =
    Recovery_block.alternate ~name (fun ctx ->
        Source.write ctx tty (name ^ " reporting " ^ string_of_int result);
        Engine.delay ctx cost;
        result)
  in
  let rb =
    Recovery_block.make
      ~acceptance:(fun _ v -> v >= 0)
      [
        Fault.always ~mode:Fault.Wrong ~corrupt:(fun v -> -v)
          (version "primary" 0.1 10);
        version "backup-fast" 0.3 20;
        version "backup-slow" 0.9 30;
      ]
  in
  let policy =
    Recovery_block.distributed_policy ~nodes:5 ~crashed:[ 2 ] ~vote_delay:0.001 ()
  in
  let r = in_process eng (fun ctx -> Recovery_block.run_concurrent ctx ~policy rb) in
  check Alcotest.bool "fast backup accepted" true
    (r.Recovery_block.verdict = `Accepted (1, 20));
  let lines = List.map (fun (_, _, l) -> l) (Source.output tty) in
  check Alcotest.(list string) "only the accepted version spoke"
    [ "backup-fast reporting 20" ] lines

(* Speculative children of an alternative block send messages to an outside
   observer; the observer splits per world and only the winner-consistent
   world survives. *)
let test_block_children_split_observer () =
  let eng = Engine.create ~trace:true () in
  let seen = ref [] in
  let observer =
    Engine.spawn eng ~name:"observer" (fun ctx ->
        let m = Engine.receive ctx () in
        (* Park a little so worlds survive past the sync. *)
        Engine.delay ctx 10.;
        seen := Payload.get_int m.Message.payload :: !seen)
  in
  let speak i cost =
    Alternative.make (fun ctx ->
        Engine.send ctx observer (Payload.int i);
        Engine.delay ctx cost;
        i)
  in
  let r = in_process eng (fun ctx -> Concurrent.run ctx [ speak 1 5.; speak 2 1. ]) in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = 2; _ } -> ()
  | _ -> Alcotest.fail "alternative 2 must win");
  check Alcotest.(list int) "observer saw exactly the winner's message" [ 2 ] !seen;
  check Alcotest.bool "a split happened" true
    (Trace.count (Engine.trace eng) ~f:(function Trace.Split _ -> true | _ -> false)
     >= 1)

(* Nested blocks: an alternative that itself runs an alternative block. *)
let test_nested_alternative_blocks () =
  let eng = Engine.create ~trace:false () in
  let inner =
    Alternative.make ~name:"outer-composite" (fun ctx ->
        let r =
          Concurrent.run ctx
            [ Alternative.fixed ~cost:2. "inner-slow"; Alternative.fixed ~cost:0.5 "inner-fast" ]
        in
        match r.Concurrent.outcome with
        | Alt_block.Selected { value; _ } -> value
        | Alt_block.Block_failed _ -> raise (Alternative.Failed "inner failed"))
  in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx [ inner; Alternative.fixed ~cost:3. "outer-direct" ])
  in
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = "inner-fast"; _ } -> ()
  | Alt_block.Selected { value; _ } -> Alcotest.failf "wrong winner %s" value
  | Alt_block.Block_failed m -> Alcotest.failf "failed: %s" m

(* Prolog programs loaded from source text, solved OR-parallel in the
   simulator, with results matching the sequential engine's set. *)
let test_prolog_end_to_end () =
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "edge(a, b). edge(b, c). edge(c, d). edge(a, d).
        path(X, X, [X]).
        path(X, Z, [X|P]) :- edge(X, Y), path(Y, Z, P).");
  (match Solve.query db "path(a, d, P)" with
  | Ok sols ->
    check Alcotest.int "two routes a->d" 2 (List.length sols)
  | Error m -> Alcotest.failf "query failed: %s" m);
  let goal, _ = Parser.query "path(a, d, P)" in
  let r = Or_parallel.solve_sim db goal in
  match r.Or_parallel.first_solution with
  | Some [ (_, p) ] ->
    let seq_first =
      match Solve.first db goal with Some [ (_, t) ] -> [ t ] | _ -> []
    in
    (* OR-parallel may pick a different route than clause order: it must be
       one of the valid answers. *)
    let all =
      (Solve.run db goal).Solve.solutions |> List.map (fun s -> snd (List.hd s))
    in
    check Alcotest.bool "a valid route" true (List.exists (Term.equal p) all);
    check Alcotest.bool "sequential first also valid" true
      (match seq_first with [ t ] -> List.exists (Term.equal t) all | _ -> false)
  | _ -> Alcotest.fail "no OR-parallel solution"

(* The sort-selection story of section 4.2, on the simulator: a synthetic
   quicksort (fast on random, slow on sorted input) races a synthetic
   insertion sort (fast on sorted input). The block always costs about the
   winner's time. *)
let test_sort_selection_story () =
  let run_input ~sortedness =
    (* Cost models: quicksort degrades with sortedness, insertion improves. *)
    let qsort_cost = 1.0 +. (9.0 *. sortedness) in
    let isort_cost = 10.0 -. (9.0 *. sortedness) in
    let eng = Engine.create ~trace:false () in
    let r =
      Concurrent.run_toplevel eng
        [
          Alternative.fixed ~name:"quicksort" ~cost:qsort_cost "quicksort";
          Alternative.fixed ~name:"insertion" ~cost:isort_cost "insertion";
        ]
    in
    (r.Concurrent.elapsed, r.Concurrent.outcome)
  in
  let t_random, o_random = run_input ~sortedness:0. in
  let t_sorted, o_sorted = run_input ~sortedness:1. in
  check (Alcotest.float 1e-9) "random input: quicksort time" 1. t_random;
  check (Alcotest.float 1e-9) "sorted input: insertion time" 1. t_sorted;
  (match o_random with
  | Alt_block.Selected { value = "quicksort"; _ } -> ()
  | _ -> Alcotest.fail "quicksort should win random input");
  match o_sorted with
  | Alt_block.Selected { value = "insertion"; _ } -> ()
  | _ -> Alcotest.fail "insertion should win sorted input"

(* Throughput accounting across a whole experiment: total CPU equals winner
   work + wasted work, and wasted work matches the report. *)
let test_throughput_accounting () =
  let eng = Engine.create ~trace:false () in
  let r =
    Concurrent.run_toplevel eng
      [ Alternative.fixed ~cost:2. 0; Alternative.fixed ~cost:5. 1;
        Alternative.fixed ~cost:7. 2 ]
  in
  let total = Engine.total_cpu_time eng in
  check (Alcotest.float 1e-6) "total = winner + wasted" total
    (2. +. r.Concurrent.wasted_cpu);
  check (Alcotest.float 1e-6) "wasted = 2 siblings x 2s" 4. r.Concurrent.wasted_cpu

let () =
  Alcotest.run "integration"
    [
      ( "end-to-end",
        [
          Alcotest.test_case "block gates source output" `Quick
            test_block_gates_source_output;
          Alcotest.test_case "distributed recovery block" `Quick
            test_distributed_recovery_block_end_to_end;
          Alcotest.test_case "children split an outside observer" `Quick
            test_block_children_split_observer;
          Alcotest.test_case "nested alternative blocks" `Quick
            test_nested_alternative_blocks;
          Alcotest.test_case "prolog end-to-end" `Quick test_prolog_end_to_end;
          Alcotest.test_case "sort-selection story (section 4.2)" `Quick
            test_sort_selection_story;
          Alcotest.test_case "throughput accounting" `Quick test_throughput_accounting;
        ] );
    ]
