(* Tests for the real-OS runtime: forked racing and COW measurement. These
   exercise Unix.fork, pipes and signals for real. *)

let check = Alcotest.check

let test_fastest_wins () =
  match
    Fork_race.run ~timeout:30.
      [
        (fun () -> Unix.sleepf 0.3; "slow");
        (fun () -> Unix.sleepf 0.02; "fast");
      ]
  with
  | Fork_race.Winner { index; value; elapsed } ->
    check Alcotest.int "index" 1 index;
    check Alcotest.string "value" "fast" value;
    check Alcotest.bool "did not wait for the slow one" true (elapsed < 0.25)
  | _ -> Alcotest.fail "expected a winner"

let test_failed_alternative_not_selected () =
  match
    Fork_race.run ~timeout:30.
      [
        (fun () -> failwith "instant but broken");
        (fun () -> Unix.sleepf 0.05; 42);
      ]
  with
  | Fork_race.Winner { index; value; _ } ->
    check Alcotest.int "survivor wins" 1 index;
    check Alcotest.int "value" 42 value
  | _ -> Alcotest.fail "expected a winner"

let test_all_failed () =
  match
    Fork_race.run ~timeout:30.
      [ (fun () -> failwith "a" : unit -> int); (fun () -> exit 3) ]
  with
  | Fork_race.All_failed _ -> ()
  | _ -> Alcotest.fail "expected all-failed"

let test_timeout_kills_children () =
  let t0 = Unix.gettimeofday () in
  (match Fork_race.run ~timeout:0.2 [ (fun () -> Unix.sleepf 30.; 0) ] with
  | Fork_race.Timed_out { elapsed } ->
    check Alcotest.bool "returned at the deadline" true (elapsed < 1.0)
  | _ -> Alcotest.fail "expected timeout");
  check Alcotest.bool "no 30s wait" true (Unix.gettimeofday () -. t0 < 2.)

let test_structured_values_cross_the_pipe () =
  let v = [ (1, "one"); (2, "two") ] in
  match Fork_race.run ~timeout:30. [ (fun () -> v) ] with
  | Fork_race.Winner { value; _ } ->
    check Alcotest.bool "marshalled intact" true (value = v)
  | _ -> Alcotest.fail "expected a winner"

let test_child_isolation () =
  (* A child's mutation of inherited OCaml state must be invisible here. *)
  let cell = ref 1 in
  (match
     Fork_race.run ~timeout:30.
       [ (fun () -> cell := 999; !cell) ]
   with
  | Fork_race.Winner { value = 999; _ } -> ()
  | _ -> Alcotest.fail "child sees its own write");
  check Alcotest.int "parent unaffected (COW isolation)" 1 !cell

let test_empty_rejected () =
  Alcotest.check_raises "empty" (Invalid_argument "Fork_race.run: empty list")
    (fun () -> ignore (Fork_race.run ([] : (unit -> int) list)))

let test_run_exn () =
  check Alcotest.int "winner value" 7 (Fork_race.run_exn [ (fun () -> 7) ]);
  Alcotest.check_raises "all failed"
    (Failure "Fork_race: all alternatives failed") (fun () ->
      ignore (Fork_race.run_exn [ (fun () -> failwith "x" : unit -> int) ]))

let test_many_alternatives () =
  let winner =
    Fork_race.run_exn ~timeout:60.
      (List.init 8 (fun i () ->
           Unix.sleepf (0.02 +. (0.05 *. float_of_int (7 - i)));
           i))
  in
  check Alcotest.int "cheapest sleep wins" 7 winner

(* ---------------- Measure ---------------- *)

let test_fork_latency_sane () =
  let s = Measure.fork_latency ~iters:10 () in
  check Alcotest.int "ten samples" 10 s.Stats.n;
  check Alcotest.bool "positive and sub-second" true
    (s.Stats.median > 0. && s.Stats.median < 1.)

let test_fork_latency_validation () =
  Alcotest.check_raises "iters > 0" (Invalid_argument "Measure: iters must be positive")
    (fun () -> ignore (Measure.fork_latency ~iters:0 ()))

let test_cow_touch_fraction_validation () =
  Alcotest.check_raises "fraction range"
    (Invalid_argument "Measure.cow_touch_time: fraction out of range") (fun () ->
      ignore (Measure.cow_touch_time ~pages:4 ~fraction:1.5 ~iters:1 ()))

let test_cow_touch_monotone_in_fraction () =
  (* Medians over a few iterations: touching everything must not be cheaper
     than touching nothing (allow generous noise). *)
  let base = (Measure.cow_touch_time ~pages:4096 ~fraction:0. ~iters:7 ()).Stats.median in
  let full = (Measure.cow_touch_time ~pages:4096 ~fraction:1. ~iters:7 ()).Stats.median in
  check Alcotest.bool "full touch costs at least as much" true (full >= base *. 0.8)

let test_page_copy_rate_positive () =
  let rate = Measure.page_copy_rate ~pages:1024 ~iters:5 () in
  check Alcotest.bool "positive" true (rate > 0.)

let () =
  Alcotest.run "osrun"
    [
      ( "fork_race",
        [
          Alcotest.test_case "fastest wins" `Quick test_fastest_wins;
          Alcotest.test_case "failures not selected" `Quick
            test_failed_alternative_not_selected;
          Alcotest.test_case "all failed" `Quick test_all_failed;
          Alcotest.test_case "timeout kills children" `Quick test_timeout_kills_children;
          Alcotest.test_case "structured values" `Quick test_structured_values_cross_the_pipe;
          Alcotest.test_case "child isolation" `Quick test_child_isolation;
          Alcotest.test_case "empty rejected" `Quick test_empty_rejected;
          Alcotest.test_case "run_exn" `Quick test_run_exn;
          Alcotest.test_case "many alternatives" `Slow test_many_alternatives;
        ] );
      ( "measure",
        [
          Alcotest.test_case "fork latency" `Quick test_fork_latency_sane;
          Alcotest.test_case "latency validation" `Quick test_fork_latency_validation;
          Alcotest.test_case "fraction validation" `Quick test_cow_touch_fraction_validation;
          Alcotest.test_case "cow monotone in fraction" `Slow
            test_cow_touch_monotone_in_fraction;
          Alcotest.test_case "copy rate positive" `Slow test_page_copy_rate_positive;
        ] );
    ]
