(* Unit and property tests for alt_base: pids, PRNG, statistics. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

(* ---------------- Pid ---------------- *)

let test_allocator_monotone () =
  let a = Pid.Allocator.create () in
  let p0 = Pid.Allocator.fresh a in
  let p1 = Pid.Allocator.fresh a in
  let p2 = Pid.Allocator.fresh a in
  check Alcotest.int "first pid is 0" 0 (Pid.to_int p0);
  check Alcotest.int "second pid is 1" 1 (Pid.to_int p1);
  check Alcotest.int "third pid is 2" 2 (Pid.to_int p2);
  check Alcotest.int "allocated count" 3 (Pid.Allocator.allocated a)

let test_allocator_first () =
  let a = Pid.Allocator.create ~first:10 () in
  check Alcotest.int "starts at 10" 10 (Pid.to_int (Pid.Allocator.fresh a));
  check Alcotest.int "one allocated" 1 (Pid.Allocator.allocated a)

let test_pid_order_and_equality () =
  let p = Pid.of_int 3 and q = Pid.of_int 5 in
  check Alcotest.bool "equal self" true (Pid.equal p p);
  check Alcotest.bool "not equal" false (Pid.equal p q);
  check Alcotest.bool "compare" true (Pid.compare p q < 0);
  check Alcotest.string "to_string" "P3" (Pid.to_string p)

let test_pid_set_map () =
  let open Pid in
  let s = Set.of_list [ of_int 2; of_int 1; of_int 2 ] in
  check Alcotest.int "set dedups" 2 (Set.cardinal s);
  let m = Map.add (of_int 1) "a" Map.empty in
  check Alcotest.(option string) "map find" (Some "a") (Map.find_opt (of_int 1) m)

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:7 and b = Rng.create ~seed:7 in
  for _ = 1 to 100 do
    check Alcotest.int64 "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  check Alcotest.bool "different seeds differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_copy () =
  let a = Rng.create ~seed:3 in
  ignore (Rng.bits64 a);
  let b = Rng.copy a in
  check Alcotest.int64 "copies agree" (Rng.bits64 a) (Rng.bits64 b)

let test_rng_split_independent () =
  let a = Rng.create ~seed:3 in
  let b = Rng.split a in
  (* The split stream must differ from the parent's continued stream. *)
  check Alcotest.bool "split differs" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_int_bounds () =
  let r = Rng.create ~seed:11 in
  for _ = 1 to 1000 do
    let v = Rng.int r 17 in
    if v < 0 || v >= 17 then Alcotest.fail "Rng.int out of bounds"
  done

let test_rng_int_invalid () =
  let r = Rng.create ~seed:1 in
  Alcotest.check_raises "zero bound" (Invalid_argument "Rng.int: bound must be positive")
    (fun () -> ignore (Rng.int r 0))

(* Regression for the modulo-bias fix. A bound of 3*2^60 makes the bias
   of the old [r mod bound] enormous: the 62-bit draw covers 4*2^60
   values, so results below 2^60 were produced by two preimages (r and
   r + bound) and P(v < 2^60) was 1/2 instead of the uniform 1/3.
   Rejection sampling brings it back to ~1/3; the old code fails this
   deterministic check immediately. *)
let test_rng_int_large_bound_unbiased () =
  let r = Rng.create ~seed:97 in
  let bound = 3 * (1 lsl 60) in
  let cut = 1 lsl 60 in
  let n = 4000 in
  let low = ref 0 in
  for _ = 1 to n do
    let v = Rng.int r bound in
    if v < 0 || v >= bound then Alcotest.fail "Rng.int out of bounds";
    if v < cut then incr low
  done;
  let frac = float_of_int !low /. float_of_int n in
  if frac > 0.40 then
    Alcotest.failf
      "Rng.int is modulo-biased: %.3f of draws in the first third (expected \
       ~0.333, the biased sampler gives ~0.50)"
      frac

(* Chi-square sanity: Rng.int 7 over 14000 draws, 7 bins of expectation
   2000. With 6 degrees of freedom, chi2 < 22.46 covers p = 0.001; the
   draw is deterministic in the seed, so this never flakes. *)
let test_rng_int_chi_square () =
  let r = Rng.create ~seed:12345 in
  let bins = 7 in
  let per_bin = 2000 in
  let n = bins * per_bin in
  let counts = Array.make bins 0 in
  for _ = 1 to n do
    let v = Rng.int r bins in
    counts.(v) <- counts.(v) + 1
  done;
  let expected = float_of_int per_bin in
  let chi2 =
    Array.fold_left
      (fun acc c ->
        let d = float_of_int c -. expected in
        acc +. (d *. d /. expected))
      0. counts
  in
  if chi2 > 22.46 then
    Alcotest.failf "chi-square %.2f exceeds the p=0.001 bound for df=6" chi2

let test_rng_float_range () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 1000 do
    let v = Rng.float r 2.5 in
    if v < 0. || v >= 2.5 then Alcotest.fail "Rng.float out of range"
  done

let test_rng_bernoulli_extremes () =
  let r = Rng.create ~seed:5 in
  for _ = 1 to 50 do
    check Alcotest.bool "p=1 always true" true (Rng.bernoulli r ~p:1.0);
    check Alcotest.bool "p=0 always false" false (Rng.bernoulli r ~p:0.0)
  done

let test_rng_bernoulli_frequency () =
  let r = Rng.create ~seed:5 in
  let hits = ref 0 in
  let n = 20_000 in
  for _ = 1 to n do
    if Rng.bernoulli r ~p:0.3 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  check Alcotest.bool "frequency near 0.3" true (Float.abs (freq -. 0.3) < 0.02)

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:9 in
  let n = 50_000 in
  let sum = ref 0. in
  for _ = 1 to n do
    let v = Rng.exponential r ~mean:2.0 in
    if v < 0. then Alcotest.fail "exponential negative";
    sum := !sum +. v
  done;
  let mean = !sum /. float_of_int n in
  check Alcotest.bool "sample mean near 2.0" true (Float.abs (mean -. 2.0) < 0.1)

let test_rng_uniform_in () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 1000 do
    let v = Rng.uniform_in r ~lo:(-1.) ~hi:1. in
    if v < -1. || v >= 1. then Alcotest.fail "uniform_in out of range"
  done

let test_rng_shuffle_permutation () =
  let r = Rng.create ~seed:21 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  check Alcotest.(array int) "is a permutation" (Array.init 50 Fun.id) sorted

let test_rng_pick () =
  let r = Rng.create ~seed:2 in
  let a = [| "x"; "y"; "z" |] in
  for _ = 1 to 100 do
    let v = Rng.pick r a in
    if not (Array.mem v a) then Alcotest.fail "pick outside array"
  done;
  Alcotest.check_raises "empty pick" (Invalid_argument "Rng.pick: empty array")
    (fun () -> ignore (Rng.pick r [||]))

(* ---------------- Stats ---------------- *)

let test_stats_mean_variance () =
  let xs = [| 1.; 2.; 3.; 4. |] in
  check cf "mean" 2.5 (Stats.mean xs);
  check cf "variance" 1.25 (Stats.variance xs);
  check cf "stddev" (sqrt 1.25) (Stats.stddev xs);
  check cf "sum" 10. (Stats.sum xs)

let test_stats_single () =
  let xs = [| 42. |] in
  check cf "mean" 42. (Stats.mean xs);
  check cf "variance" 0. (Stats.variance xs);
  check cf "median" 42. (Stats.median xs)

let test_stats_min_max () =
  let xs = [| 3.; -1.; 7.; 0. |] in
  check cf "min" (-1.) (Stats.min xs);
  check cf "max" 7. (Stats.max xs)

let test_stats_percentiles () =
  let xs = [| 4.; 1.; 3.; 2. |] in
  check cf "p0 = min" 1. (Stats.percentile xs ~p:0.);
  check cf "p100 = max" 4. (Stats.percentile xs ~p:100.);
  check cf "median interpolated" 2.5 (Stats.median xs);
  check cf "p25" 1.75 (Stats.percentile xs ~p:25.)

let test_stats_empty_raises () =
  Alcotest.check_raises "empty mean" (Invalid_argument "Stats: empty sample")
    (fun () -> ignore (Stats.mean [||]))

let test_stats_percentile_range () =
  Alcotest.check_raises "p out of range"
    (Invalid_argument "Stats.percentile: p out of range") (fun () ->
      ignore (Stats.percentile [| 1. |] ~p:101.))

let test_stats_summary () =
  let s = Stats.summarize [| 1.; 2.; 3. |] in
  check Alcotest.int "n" 3 s.Stats.n;
  check cf "mean" 2. s.Stats.mean;
  check cf "min" 1. s.Stats.min;
  check cf "max" 3. s.Stats.max;
  check cf "median" 2. s.Stats.median;
  let str = Format.asprintf "%a" Stats.pp_summary s in
  check Alcotest.bool "pp mentions n" true
    (String.length str > 0 && String.sub str 0 3 = "n=3")

(* ---------------- properties ---------------- *)

let nonempty_floats =
  QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-1000.) 1000.))

let prop_mean_bounded =
  QCheck.Test.make ~name:"mean lies between min and max" ~count:500
    nonempty_floats (fun xs ->
      let m = Stats.mean xs in
      Stats.min xs <= m +. 1e-9 && m <= Stats.max xs +. 1e-9)

let prop_variance_nonneg =
  QCheck.Test.make ~name:"variance is non-negative" ~count:500 nonempty_floats
    (fun xs -> Stats.variance xs >= -1e-9)

let prop_percentile_monotone =
  QCheck.Test.make ~name:"percentile is monotone in p" ~count:300
    QCheck.(pair nonempty_floats (pair (float_range 0. 100.) (float_range 0. 100.)))
    (fun (xs, (p1, p2)) ->
      let lo = Float.min p1 p2 and hi = Float.max p1 p2 in
      Stats.percentile xs ~p:lo <= Stats.percentile xs ~p:hi +. 1e-9)

let prop_shuffle_preserves_multiset =
  QCheck.Test.make ~name:"shuffle preserves elements" ~count:300
    QCheck.(pair small_int (array small_int))
    (fun (seed, a) ->
      let r = Rng.create ~seed in
      let b = Array.copy a in
      Rng.shuffle r b;
      let sa = Array.copy a and sb = Array.copy b in
      Array.sort compare sa;
      Array.sort compare sb;
      sa = sb)

let () =
  Alcotest.run "base"
    [
      ( "pid",
        [
          Alcotest.test_case "allocator is monotone" `Quick test_allocator_monotone;
          Alcotest.test_case "allocator custom start" `Quick test_allocator_first;
          Alcotest.test_case "order and equality" `Quick test_pid_order_and_equality;
          Alcotest.test_case "set and map" `Quick test_pid_set_map;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic per seed" `Quick test_rng_deterministic;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "copy duplicates state" `Quick test_rng_copy;
          Alcotest.test_case "split diverges" `Quick test_rng_split_independent;
          Alcotest.test_case "int stays in bounds" `Quick test_rng_int_bounds;
          Alcotest.test_case "int rejects bad bound" `Quick test_rng_int_invalid;
          Alcotest.test_case "int large-bound bias regression" `Quick
            test_rng_int_large_bound_unbiased;
          Alcotest.test_case "int chi-square uniformity" `Slow
            test_rng_int_chi_square;
          Alcotest.test_case "float stays in range" `Quick test_rng_float_range;
          Alcotest.test_case "bernoulli extremes" `Quick test_rng_bernoulli_extremes;
          Alcotest.test_case "bernoulli frequency" `Slow test_rng_bernoulli_frequency;
          Alcotest.test_case "exponential mean" `Slow test_rng_exponential_mean;
          Alcotest.test_case "uniform_in range" `Quick test_rng_uniform_in;
          Alcotest.test_case "shuffle is a permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "pick membership" `Quick test_rng_pick;
        ] );
      ( "stats",
        [
          Alcotest.test_case "mean/variance/stddev/sum" `Quick test_stats_mean_variance;
          Alcotest.test_case "single sample" `Quick test_stats_single;
          Alcotest.test_case "min and max" `Quick test_stats_min_max;
          Alcotest.test_case "percentiles" `Quick test_stats_percentiles;
          Alcotest.test_case "empty raises" `Quick test_stats_empty_raises;
          Alcotest.test_case "percentile range check" `Quick test_stats_percentile_range;
          Alcotest.test_case "summary" `Quick test_stats_summary;
        ] );
      ( "properties",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_mean_bounded;
            prop_variance_nonneg;
            prop_percentile_monotone;
            prop_shuffle_preserves_multiset;
          ] );
    ]
