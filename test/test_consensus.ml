(* Tests for the majority-consensus 0-1 semaphore (section 3.2.1). *)

let check = Alcotest.check

let mk () = Engine.create ~trace:false ~model:Cost_model.hp_9000_350 ()

let test_create_validations () =
  let eng = mk () in
  Alcotest.check_raises "nodes >= 1"
    (Invalid_argument "Majority.create: nodes must be >= 1") (fun () ->
      ignore (Majority.create eng ~nodes:0 ()));
  let m = Majority.create eng ~nodes:5 () in
  check Alcotest.int "nodes" 5 (Majority.nodes m);
  check Alcotest.int "majority of 5 is 3" 3 (Majority.majority m);
  check Alcotest.int "pids spawned" 5 (List.length (Majority.node_pids m));
  let m1 = Majority.create eng ~nodes:1 () in
  check Alcotest.int "majority of 1 is 1" 1 (Majority.majority m1)

let test_single_requester_acquires () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let got = ref false in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Majority.acquire ctx m ~reply_timeout:1.;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "acquired" true !got

let test_exclusive_between_two () =
  (* Whatever the interleaving, at most one of two competing requesters may
     win. Stagger the second one across several offsets. *)
  List.iter
    (fun offset ->
      let eng = mk () in
      let m = Majority.create eng ~nodes:3 () in
      let r1 = ref None and r2 = ref None in
      ignore
        (Engine.spawn eng (fun ctx ->
             r1 := Some (Majority.acquire ctx m ~reply_timeout:1.)));
      ignore
        (Engine.spawn eng ~start_delay:offset (fun ctx ->
             r2 := Some (Majority.acquire ctx m ~reply_timeout:1.)));
      Engine.run eng;
      match (!r1, !r2) with
      | Some a, Some b ->
        if a && b then Alcotest.failf "both won at offset %g" offset;
        if not (a || b) then Alcotest.failf "nobody won at offset %g" offset
      | _ -> Alcotest.fail "requester never finished")
    [ 0.; 0.001; 0.004; 0.01; 0.5 ]

let test_survives_minority_crash () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:5 ~crashed:[ 0; 4 ] () in
  let got = ref false in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Majority.acquire ctx m ~reply_timeout:0.5;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "2 of 5 crashed: still acquirable" true !got

let test_majority_crash_blocks_all () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:5 ~crashed:[ 0; 1; 2 ] () in
  let got = ref true in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Majority.acquire ctx m ~reply_timeout:0.2;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.bool "3 of 5 crashed: unacquirable" false !got

let test_reacquire_idempotent () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let seq = ref [] in
  ignore
    (Engine.spawn eng (fun ctx ->
         seq := Majority.acquire ctx m ~reply_timeout:1. :: !seq;
         seq := Majority.acquire ctx m ~reply_timeout:1. :: !seq;
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.(list bool) "both acquisitions granted" [ true; true ] !seq

let test_owner_visible () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let winner = ref None in
  let pid =
    Engine.spawn eng (fun ctx ->
        if Majority.acquire ctx m ~reply_timeout:1. then
          winner := Some (Engine.self ctx);
        Majority.shutdown m)
  in
  Engine.run eng;
  check Alcotest.bool "owner matches winner" true
    (Majority.owner m = Some pid && !winner = Some pid)

let test_message_accounting () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  ignore
    (Engine.spawn eng (fun ctx ->
         ignore (Majority.acquire ctx m ~reply_timeout:1.);
         Majority.shutdown m));
  Engine.run eng;
  (* 3 requests + 3 replies handled by live voters. *)
  check Alcotest.int "six protocol messages" 6 (Majority.messages_sent m)

let test_vote_delay_slows_acquire () =
  let run_with delay =
    let eng = mk () in
    let m = Majority.create eng ~nodes:3 ~vote_delay:delay () in
    let t = ref 0. in
    ignore
      (Engine.spawn eng (fun ctx ->
           ignore (Majority.acquire ctx m ~reply_timeout:5.);
           t := Engine.now_v ctx;
           Majority.shutdown m));
    Engine.run eng;
    !t
  in
  check Alcotest.bool "vote processing delays acquisition" true
    (run_with 0.05 > run_with 0. +. 0.04)

(* Regression for the stale-reply bug. 2 live voters of 5 can never be a
   majority, however often the requester retries. Before the round-id
   fix, the retried [acquire] consumed the previous round's queued
   grants AND the current round's — tallying voters 0 and 1 twice, i.e.
   4 "grants" >= 3 — and won a majority it does not hold. *)
let test_retry_after_timeout_cannot_win_lost_majority () =
  let eng = mk () in
  let m =
    Majority.create eng ~nodes:5 ~crashed:[ 2; 3; 4 ] ~vote_delay:0.3 ()
  in
  let first = ref None and second = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         (* Votes take ~0.3 s; a 0.1 s reply timeout expires first, so
            this round's two grants arrive after the caller gave up. *)
         first := Some (Majority.acquire ctx m ~reply_timeout:0.1);
         Engine.delay ctx 1.0;
         (* The stale grants now sit in the mailbox. Retry with a window
            long enough to also collect this round's fresh grants. *)
         second := Some (Majority.acquire ctx m ~reply_timeout:0.5);
         Majority.shutdown m));
  Engine.run eng;
  check Alcotest.(option bool) "first acquire times out" (Some false) !first;
  check Alcotest.(option bool)
    "retry must not double-count voters into a majority" (Some false) !second;
  check Alcotest.bool "no owner" true (Majority.owner m = None)

(* The flip side: a retry against a live majority must still succeed once
   the voters are given time to answer (a timed-out acquire is safely
   retryable, not poisoned). *)
let test_retry_after_timeout_succeeds_with_live_majority () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 ~vote_delay:0.3 () in
  let first = ref None and second = ref None in
  let pid =
    Engine.spawn eng (fun ctx ->
        first := Some (Majority.acquire ctx m ~reply_timeout:0.1);
        Engine.delay ctx 1.0;
        second := Some (Majority.acquire ctx m ~reply_timeout:5.);
        Majority.shutdown m)
  in
  Engine.run eng;
  check Alcotest.(option bool) "first acquire times out" (Some false) !first;
  check Alcotest.(option bool) "retry wins" (Some true) !second;
  check Alcotest.bool "owner is the requester" true
    (Majority.owner m = Some pid)

let verdict =
  Alcotest.testable
    (fun fmt v ->
      Format.pp_print_string fmt
        (match v with
        | Majority.Granted -> "Granted"
        | Majority.Denied -> "Denied"
        | Majority.No_quorum -> "No_quorum"))
    ( = )

(* Regression for the malformed-request asymmetry. The voter used to
   parse a request's round with a default of 0 for unparseable payloads,
   so a garbled request was treated as round 0 and GRANTED — consuming
   the durable half of the 0-1 semaphore — while the requester side
   mapped the same garbage to -1 and would never have counted the reply.
   With a single voter, one rogue garbled request starved every genuine
   requester forever. The voter must reject what the requester side
   rejects. *)
let test_malformed_request_does_not_consume_grant () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:1 () in
  let voter = List.hd (Majority.node_pids m) in
  let got = ref None in
  (* The rogue fires first: two differently-garbled requests. *)
  ignore
    (Engine.spawn eng ~name:"rogue" (fun ctx ->
         Engine.send ctx ~tag:"vote_req" voter (Payload.Str "junk");
         Engine.send ctx ~tag:"vote_req" voter (Payload.Int (-1))));
  ignore
    (Engine.spawn eng ~name:"genuine" ~start_delay:0.01 (fun ctx ->
         got := Some (Majority.acquire_verdict ctx m ~reply_timeout:1.);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "garbled requests never hold the vote"
    (Some Majority.Granted) !got

let test_verdict_denied_is_final () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 () in
  let winner = ref None and loser = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         winner := Some (Majority.acquire_verdict ctx m ~reply_timeout:1.)));
  ignore
    (Engine.spawn eng ~start_delay:0.5 (fun ctx ->
         (* The semaphore is owned by now: every voter answers promptly
            with a denial — this is [Denied], not a quorum problem, and
            retrying must not burn backoff time on it. *)
         loser :=
           Some
             (Majority.acquire_retry ctx m ~reply_timeout:1. ~retries:3
                ~backoff:10. ());
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict) "first requester wins" (Some Majority.Granted)
    !winner;
  check (Alcotest.option verdict) "second is denied" (Some Majority.Denied)
    !loser;
  (* 3 retries at backoff 10 would push past t = 10; a final verdict
     returns immediately instead. *)
  check Alcotest.bool "denial did not trigger backoff" true
    (Engine.now eng < 5.)

let test_retry_never_overruns_deadline () =
  (* Deadline propagation into the retry backoff: a requester facing a
     silent majority must stop retrying as soon as the next round could
     not finish inside its request deadline. The control run below is
     the pre-fix behaviour — the same retry schedule without a deadline
     burns through every backoff round, far past the budget the serving
     layer granted the request. *)
  let deadline = 0.5 in
  let run_with ?deadline () =
    let eng = mk () in
    let m = Majority.create eng ~nodes:3 ~crashed:[ 0; 1 ] () in
    let got = ref None and finished = ref 0. in
    ignore
      (Engine.spawn eng (fun ctx ->
           got :=
             Some
               (Majority.acquire_retry ctx m ?deadline ~reply_timeout:0.2
                  ~retries:5 ~backoff:0.1 ());
           finished := Engine.now_v ctx;
           Majority.shutdown m));
    Engine.run eng;
    (!got, !finished)
  in
  let bounded, t_bounded = run_with ~deadline () in
  check (Alcotest.option verdict) "honest verdict: still no quorum"
    (Some Majority.No_quorum) bounded;
  check Alcotest.bool "gave up within the request deadline" true
    (t_bounded <= deadline);
  let unbounded, t_unbounded = run_with () in
  check (Alcotest.option verdict) "control also ends in no-quorum"
    (Some Majority.No_quorum) unbounded;
  check Alcotest.bool
    "without the deadline the retry schedule overruns the budget" true
    (t_unbounded > deadline)

let test_verdict_no_quorum_when_majority_silent () =
  let eng = mk () in
  let m = Majority.create eng ~nodes:3 ~crashed:[ 0; 1 ] () in
  let got = ref None in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Some (Majority.acquire_verdict ctx m ~reply_timeout:0.2);
         Majority.shutdown m));
  Engine.run eng;
  check (Alcotest.option verdict)
    "2 of 3 silent: undecided, not denied" (Some Majority.No_quorum) !got

let test_speculative_requesters_do_not_split_voters () =
  (* The voters are oblivious: requests from speculative alternatives (with
     non-trivial predicates) must not spawn voter worlds. *)
  let eng = Engine.create ~trace:true ~model:Cost_model.hp_9000_350 () in
  let m = Majority.create eng ~nodes:3 () in
  let pids = Engine.fresh_pids eng 2 in
  let a = List.nth pids 0 and b = List.nth pids 1 in
  let wins = ref 0 in
  let spawn_child pid other =
    ignore
      (Engine.spawn eng ~pid
         ~predicate:
           (Predicate.make ~must_complete:[ pid ] ~must_fail:[ other ])
         (fun ctx ->
           if Majority.acquire ctx m ~reply_timeout:1. then incr wins))
  in
  spawn_child a b;
  spawn_child b a;
  Engine.run eng;
  check Alcotest.int "exactly one winner" 1 !wins;
  check Alcotest.int "no voter splits" 0
    (Trace.count (Engine.trace eng) ~f:(function
      | Trace.Split _ -> true
      | _ -> false))

let () =
  Alcotest.run "consensus"
    [
      ( "majority",
        [
          Alcotest.test_case "creation and arithmetic" `Quick test_create_validations;
          Alcotest.test_case "single requester acquires" `Quick test_single_requester_acquires;
          Alcotest.test_case "mutual exclusion" `Quick test_exclusive_between_two;
          Alcotest.test_case "survives minority crash" `Quick test_survives_minority_crash;
          Alcotest.test_case "majority crash blocks all" `Quick test_majority_crash_blocks_all;
          Alcotest.test_case "reacquire is idempotent" `Quick test_reacquire_idempotent;
          Alcotest.test_case "owner visible" `Quick test_owner_visible;
          Alcotest.test_case "message accounting" `Quick test_message_accounting;
          Alcotest.test_case "vote delay" `Quick test_vote_delay_slows_acquire;
          Alcotest.test_case "stale replies cannot fake a majority" `Quick
            test_retry_after_timeout_cannot_win_lost_majority;
          Alcotest.test_case "timed-out acquire is retryable" `Quick
            test_retry_after_timeout_succeeds_with_live_majority;
          Alcotest.test_case "speculative requesters, oblivious voters" `Quick
            test_speculative_requesters_do_not_split_voters;
          Alcotest.test_case "malformed request cannot hold the vote" `Quick
            test_malformed_request_does_not_consume_grant;
          Alcotest.test_case "denied is final, skips backoff" `Quick
            test_verdict_denied_is_final;
          Alcotest.test_case "retries never overrun the request deadline"
            `Quick test_retry_never_overruns_deadline;
          Alcotest.test_case "silent majority is no-quorum" `Quick
            test_verdict_no_quorum_when_majority_silent;
        ] );
    ]
