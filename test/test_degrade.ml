(* Tests for the overload-robustness layer: the deterministic
   degradation ladder (lib/serve/controller.ml), the per-site circuit
   breakers (lib/serve/breaker.ml), supervised request recovery through
   the server, and the chaos/degrade campaigns (lib/serve/chaosserve.ml). *)

let check = Alcotest.check

(* ------------------------------------------------------------------ *)
(* Controller: the ladder walks one rung at a time, with hysteresis.   *)

let ladder_cfg =
  {
    (Controller.default ~lanes:1) with
    Controller.dc_enabled = true;
    dc_est_service = 1.0;
    dc_window = 1000.;
    (* A huge decay window so these unit walks are pure leaky-bucket
       arithmetic, unobscured by the shed-rate term. *)
  }

let test_controller_validations () =
  Alcotest.check_raises "thresholds must increase"
    (Invalid_argument "Controller.create: thresholds must increase up the ladder")
    (fun () ->
      ignore
        (Controller.create
           { ladder_cfg with Controller.dc_latch_at = 5.0 }));
  Alcotest.check_raises "hysteresis in [0, 1)"
    (Invalid_argument "Controller.create: hysteresis must be in [0, 1)")
    (fun () ->
      ignore
        (Controller.create { ladder_cfg with Controller.dc_hysteresis = 1.0 }))

let test_controller_disabled_is_noop () =
  let t = Controller.create (Controller.default ~lanes:1) in
  for k = 0 to 999 do
    match
      Controller.decide t ~cls:"c" ~now:(float_of_int k *. 0.001) ~work:100.
    with
    | Controller.Admit { level = 0 } -> ()
    | _ -> Alcotest.fail "disabled controller must admit at full service"
  done;
  check Alcotest.int "no transitions" 0 (Controller.transitions t);
  check (Alcotest.float 0.) "no pressure tracked" 0.
    (Controller.peak_pressure t)

(* Feed arrivals at one instant so nothing drains between decisions:
   each admit deposits [est * work] and pressure is exactly the running
   backlog. With est = 1, lanes = 1 and work = 0.2, pressure crosses
   0.4 / 1.2 / 3.0 at predictable arrival counts, and each crossing
   moves the class exactly one rung. *)
let test_controller_walks_down_one_rung_at_a_time () =
  let t = Controller.create ladder_cfg in
  let levels = ref [] in
  for _ = 1 to 20 do
    match Controller.decide t ~cls:"c" ~now:0. ~work:0.2 with
    | Controller.Admit { level } -> levels := level :: !levels
    | Controller.Shed _ -> levels := 3 :: !levels
  done;
  let levels = List.rev !levels in
  (* Never skips a rung in either direction. *)
  ignore
    (List.fold_left
       (fun prev l ->
         check Alcotest.bool "one rung per decision" true (abs (l - prev) <= 1);
         l)
       0 levels);
  check Alcotest.int "reaches the shed rung under sustained pressure" 3
    (List.nth levels 19);
  check Alcotest.bool "passes through every intermediate rung" true
    (List.mem 1 levels && List.mem 2 levels);
  check Alcotest.bool "transitions counted" true (Controller.transitions t >= 3);
  check Alcotest.bool "sheds counted" true (Controller.overload_sheds t >= 1)

let test_controller_hysteresis_recovers () =
  let t = Controller.create ladder_cfg in
  (* Push the class to rung 1. *)
  let rec push n =
    if n = 0 then ()
    else begin
      ignore (Controller.decide t ~cls:"c" ~now:0. ~work:0.2);
      push (n - 1)
    end
  in
  push 3;
  check Alcotest.int "pushed to rung 1" 1 (Controller.level t ~cls:"c");
  (* A little drain is not enough: pressure must fall below
     latch_at * (1 - hysteresis) = 0.3 before the class steps back up. *)
  (match Controller.decide t ~cls:"c" ~now:0.25 ~work:0.0001 with
  | Controller.Admit { level } ->
      check Alcotest.int "hysteresis holds the rung" 1 level
  | Controller.Shed _ -> Alcotest.fail "not overloaded enough to shed");
  (* After a long quiet spell the bucket is empty and the class climbs
     back — again one rung at a time. *)
  (match Controller.decide t ~cls:"c" ~now:10. ~work:0.0001 with
  | Controller.Admit { level } ->
      check Alcotest.int "recovered to full service" 0 level
  | Controller.Shed _ -> Alcotest.fail "idle stream must not shed")

let test_controller_sheds_deposit_nothing () =
  let t = Controller.create ladder_cfg in
  (* Saturate to the shed rung, then keep offering at one instant:
     refused work must never occupy a lane, so the backlog each refusal
     reports stays exactly where the admitted work left it instead of
     climbing with the offered load. *)
  let backlog_of = function
    | Controller.Shed { backlog } -> Some backlog
    | Controller.Admit _ -> None
  in
  let first_shed = ref None in
  for _ = 1 to 50 do
    match backlog_of (Controller.decide t ~cls:"c" ~now:0. ~work:0.2) with
    | Some b when !first_shed = None -> first_shed := Some b
    | _ -> ()
  done;
  let first = Option.get !first_shed in
  let last = ref first in
  for _ = 1 to 1000 do
    match backlog_of (Controller.decide t ~cls:"c" ~now:0. ~work:0.2) with
    | Some b -> last := b
    | None -> Alcotest.fail "saturated controller must keep shedding"
  done;
  check (Alcotest.float 0.) "a thousand refusals do not move the backlog"
    first !last

let test_controller_shed_only_is_all_or_nothing () =
  (* The shed-only baseline runs the same meter, thresholds and
     hysteresis, but every rung below full service sheds: it must never
     hand out a degraded admit, and on the same stream it can only shed
     more than the ladder (its refusals deposit nothing, so its meter
     reads lower — yet it still answers fewer requests). *)
  let a = Controller.create ladder_cfg in
  let b = Controller.create { ladder_cfg with Controller.dc_shed_only = true } in
  let degraded_admits = ref 0 in
  for k = 0 to 199 do
    let now = float_of_int k *. 0.01 in
    ignore (Controller.decide a ~cls:"c" ~now ~work:0.3);
    match Controller.decide b ~cls:"c" ~now ~work:0.3 with
    | Controller.Admit { level } -> if level > 0 then incr degraded_admits
    | Controller.Shed _ -> ()
  done;
  check Alcotest.int "baseline never hands out a degraded admit" 0
    !degraded_admits;
  check Alcotest.bool "ladder walked its rungs on this stream" true
    (Controller.transitions a > 0);
  check Alcotest.bool "baseline sheds at least as much" true
    (Controller.overload_sheds b >= Controller.overload_sheds a);
  check Alcotest.bool "baseline answers no more than the ladder" true
    (Controller.overload_sheds b > 0)

(* ------------------------------------------------------------------ *)
(* Breaker: closed -> open -> half-open -> closed, in virtual time.    *)

let test_breaker_lifecycle () =
  let b = Breaker.create { Breaker.bk_threshold = 3; bk_cooldown = 0.5 } in
  check Alcotest.bool "starts closed" true (Breaker.state b = Breaker.Closed);
  Breaker.record_failure b ~now:0.;
  Breaker.record_failure b ~now:0.1;
  check Alcotest.bool "below threshold: still admitting" true
    (Breaker.allow b ~now:0.1);
  (* A success resets the consecutive count — two more failures are not
     enough to trip. *)
  Breaker.record_success b;
  Breaker.record_failure b ~now:0.2;
  Breaker.record_failure b ~now:0.3;
  check Alcotest.bool "success reset the streak" true (Breaker.allow b ~now:0.3);
  Breaker.record_failure b ~now:0.4;
  check Alcotest.bool "third consecutive failure trips" true
    (match Breaker.state b with Breaker.Open _ -> true | _ -> false);
  check Alcotest.int "one open so far" 1 (Breaker.opens b);
  check Alcotest.bool "open rejects during cooldown" false
    (Breaker.allow b ~now:0.5);
  (* Cooldown expiry: the next caller is the half-open probe. *)
  check Alcotest.bool "cooldown expiry admits the probe" true
    (Breaker.allow b ~now:0.91);
  check Alcotest.bool "half-open" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_success b;
  check Alcotest.bool "probe success closes" true
    (Breaker.state b = Breaker.Closed)

let test_breaker_halfopen_failure_reopens () =
  let b = Breaker.create { Breaker.bk_threshold = 1; bk_cooldown = 0.5 } in
  Breaker.record_failure b ~now:0.;
  check Alcotest.bool "tripped at one" false (Breaker.allow b ~now:0.1);
  ignore (Breaker.allow b ~now:0.6);
  check Alcotest.bool "probing" true (Breaker.state b = Breaker.Half_open);
  Breaker.record_failure b ~now:0.6;
  check Alcotest.bool "probe failure reopens" true
    (match Breaker.state b with Breaker.Open _ -> true | _ -> false);
  check Alcotest.int "reopen counted" 2 (Breaker.opens b);
  (* The fresh cooldown starts at the probe failure, not the original
     trip. *)
  check Alcotest.bool "fresh cooldown holds" false (Breaker.allow b ~now:1.0);
  check Alcotest.bool "fresh cooldown expires" true (Breaker.allow b ~now:1.11)

(* ------------------------------------------------------------------ *)
(* The ladder end to end: overloaded serving degrades deterministically
   and honestly, and never stops being a pure function of its seeds.   *)

let overload_wl =
  {
    Workload.default with
    Workload.wl_requests = 250;
    wl_rate = 400.;
    wl_seed = 3;
  }

let ladder_sv ~shed_only =
  {
    Server.default with
    Server.sv_lanes = 8;
    sv_quota_rate = 1e6;
    sv_quota_burst = 1000;
    sv_ladder =
      {
        (Controller.default ~lanes:8) with
        Controller.dc_enabled = true;
        dc_shed_only = shed_only;
      };
  }

let good (r : Server.result) =
  r.Server.served + r.Server.degraded + r.Server.recovered

let test_ladder_degrades_honestly () =
  let r = Server.run overload_wl (ladder_sv ~shed_only:false) in
  check Alcotest.int "every request answered" overload_wl.Workload.wl_requests
    (good r + r.Server.failed + r.Server.shed);
  check Alcotest.bool "overload actually degrades" true (r.Server.degraded > 0);
  check Alcotest.bool "overload actually sheds" true
    (r.Server.shed_overload > 0);
  check Alcotest.bool "the ladder actually moved" true
    (r.Server.ladder_transitions > 0);
  check Alcotest.bool "no violations under the ladder" true
    (r.Server.violations = []);
  Array.iter
    (fun (rs : Server.response) ->
      match rs.Server.rs_verdict with
      | Server.Served_degraded { level; _ } ->
          check Alcotest.bool "degraded levels are the ladder's rungs" true
            (level = 1 || level = 2)
      | Server.Rejected (Server.Overload { backlog }) ->
          check Alcotest.bool "overload refusals name the backlog" true
            (backlog > 0.)
      | _ -> ())
    r.Server.responses

let test_ladder_beats_shed_only () =
  let ladder = Server.run overload_wl (ladder_sv ~shed_only:false) in
  let baseline = Server.run overload_wl (ladder_sv ~shed_only:true) in
  check Alcotest.bool "baseline never degrades, only sheds" true
    (baseline.Server.degraded = 0);
  check Alcotest.bool "ladder goodput >= shed-only goodput" true
    (good ladder >= good baseline);
  check Alcotest.bool "no violations on either side" true
    (ladder.Server.violations = [] && baseline.Server.violations = [])

let test_ladder_run_is_deterministic () =
  let sv = { (ladder_sv ~shed_only:false) with Server.sv_jobs = 3 } in
  let d3 = Server.digest (Server.run overload_wl sv) in
  let d3' = Server.digest (Server.run overload_wl sv) in
  let d1 =
    Server.digest (Server.run overload_wl { sv with Server.sv_jobs = 1 })
  in
  check Alcotest.bool "replay is byte-identical" true (d3 = d3');
  check Alcotest.bool "jobs-1 = jobs-3 under the ladder" true (d1 = d3)

(* ------------------------------------------------------------------ *)
(* Supervised serving under the fault campaign.                        *)

let test_deadline_bounds_the_block () =
  (* An unreachable consensus (2 of 3 voters down) with a generous
     policy timeout: the request deadline must resolve the block long
     before the policy would. *)
  let policy =
    {
      Concurrent.default_policy with
      Concurrent.sync =
        Concurrent.Consensus
          { nodes = 3; crashed = [ 0; 1 ]; vote_delay = 0.0002;
            reply_timeout = 0.3 };
      sync_retries = 10;
      sync_backoff = 0.1;
      timeout = 1000.;
    }
  in
  let eng = Engine.create ~model:Cost_model.att_3b2 () in
  let scenario = List.hd Invariants.default_scenarios in
  let alts = scenario.Invariants.alts eng ~seed:1 ~source:None in
  let report = Concurrent.run_toplevel eng ~policy ~deadline:1.0 alts in
  (match report.Concurrent.outcome with
  | Alt_block.Block_failed _ -> ()
  | Alt_block.Selected _ -> Alcotest.fail "no quorum: the block cannot decide");
  check Alcotest.bool "resolved at the deadline, not the policy timeout" true
    (report.Concurrent.elapsed <= 1.0 +. 0.3 +. 1e-6)

let test_chaos_campaign_recovers_and_stays_deterministic () =
  let o = Chaosserve.chaos ~requests:240 ~rate:400. ~jobs:2 ~seed:7 () in
  check Alcotest.int "every request answered" o.Chaosserve.ch_requests
    (o.Chaosserve.ch_served + o.Chaosserve.ch_degraded
    + o.Chaosserve.ch_recovered + o.Chaosserve.ch_failed
    + o.Chaosserve.ch_shed);
  check Alcotest.bool "the campaign recovered at least one coordinator" true
    (o.Chaosserve.ch_recovered >= 1);
  check Alcotest.bool "the breakers actually tripped" true
    (o.Chaosserve.ch_breaker_opens >= 1);
  check Alcotest.bool
    "0 violations, replay identical, jobs-1 = jobs-2 under chaos" true
    (Chaosserve.chaos_ok o)

let test_supervised_audit_catches_stale_epoch () =
  (* A clean supervised run, then a tampered copy claiming its answer
     came from a later epoch than its incarnations justify: the audit
     must call that out (a stale epoch answering through the fence is
     the supervised analogue of a double win). *)
  let eng = Engine.create ~model:Cost_model.att_3b2 () in
  let sites = Sites.create eng ~names:[ "s0"; "s1"; "s2" ] in
  let policy =
    {
      Concurrent.default_policy with
      Concurrent.sync =
        Concurrent.Consensus
          { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.5 };
    }
  in
  let scenario = List.hd Invariants.default_scenarios in
  let space =
    Address_space.create (Engine.frame_store eng) (Engine.model eng)
  in
  Address_space.set_tracking space true;
  scenario.Invariants.prepare eng space;
  let alts = scenario.Invariants.alts eng ~seed:1 ~source:None in
  let sr = Concurrent.run_supervised eng ~policy ~space ~sites alts in
  check Alcotest.int "clean supervised run passes the audit" 0
    (List.length
       (Invariants.check_supervised_report ~scenario:"counters" ~policy
          ~seed:1 sr));
  let tampered = { sr with Concurrent.sr_epoch = sr.Concurrent.sr_epoch + 1 } in
  check Alcotest.bool "stale-epoch bookkeeping is flagged" true
    (Invariants.check_supervised_report ~scenario:"counters" ~policy ~seed:1
       tampered
    <> [])

(* ------------------------------------------------------------------ *)
(* The degrade benchmark record.                                       *)

let test_degrade_record_and_schema () =
  let d =
    Chaosserve.degrade ~requests_per_step:100 ~rates:[ 200.; 600. ] ~seed:3 ()
  in
  check Alcotest.int "zero violations across both sides" 0 d.Chaosserve.dg_violations;
  check Alcotest.bool "ladder >= shed-only at every step" false
    d.Chaosserve.dg_regressed;
  List.iter
    (fun (s : Chaosserve.degrade_step) ->
      check Alcotest.bool "goodput normalised by the same horizon" true
        (s.Chaosserve.ds_horizon > 0.))
    d.Chaosserve.dg_steps;
  match Chaosserve.degrade_validate (Chaosserve.degrade_to_json d) with
  | Ok n ->
      check Alcotest.int "all schema fields present"
        (List.length Chaosserve.degrade_required_fields)
        n
  | Error missing ->
      Alcotest.fail ("missing fields: " ^ String.concat ", " missing)

let () =
  Alcotest.run "degrade"
    [
      ( "controller",
        [
          Alcotest.test_case "config validation" `Quick
            test_controller_validations;
          Alcotest.test_case "disabled controller is a no-op" `Quick
            test_controller_disabled_is_noop;
          Alcotest.test_case "walks down one rung at a time" `Quick
            test_controller_walks_down_one_rung_at_a_time;
          Alcotest.test_case "hysteresis, then recovery" `Quick
            test_controller_hysteresis_recovers;
          Alcotest.test_case "sheds deposit nothing" `Quick
            test_controller_sheds_deposit_nothing;
          Alcotest.test_case "shed-only baseline is all-or-nothing" `Quick
            test_controller_shed_only_is_all_or_nothing;
        ] );
      ( "breaker",
        [
          Alcotest.test_case "closed/open/half-open lifecycle" `Quick
            test_breaker_lifecycle;
          Alcotest.test_case "half-open failure reopens" `Quick
            test_breaker_halfopen_failure_reopens;
        ] );
      ( "ladder",
        [
          Alcotest.test_case "degrades honestly under overload" `Quick
            test_ladder_degrades_honestly;
          Alcotest.test_case "beats the shed-only baseline" `Quick
            test_ladder_beats_shed_only;
          Alcotest.test_case "stays deterministic" `Quick
            test_ladder_run_is_deterministic;
        ] );
      ( "recovery",
        [
          Alcotest.test_case "deadline bounds the block" `Quick
            test_deadline_bounds_the_block;
          Alcotest.test_case "chaos campaign recovers, deterministically"
            `Quick test_chaos_campaign_recovers_and_stays_deterministic;
          Alcotest.test_case "audit catches stale-epoch answers" `Quick
            test_supervised_audit_catches_stale_epoch;
        ] );
      ( "benchmark",
        [
          Alcotest.test_case "degrade record and schema" `Quick
            test_degrade_record_and_schema;
        ] );
    ]
