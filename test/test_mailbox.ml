(* Tests for the ring-buffer mailbox (lib/runtime/mailbox.ml, lib/msg/frame.ml)
   and the messaging hot-path fixes that ride on it:

   - pool recycling across wrap-around (the alloc-free steady state),
   - the spill path when a burst exceeds the frame pool (overflow spills,
     it never blocks: sends are asynchronous),
   - degenerate capacities (zero = all-spill, one slot),
   - world-split exclusion ([copy_excluding]) over framed/spilled mixes,
   - frame recycling vs duplicate aliasing (the latent bug a shared-slot
     implementation has: both regression-tested at the frame level and
     end-to-end through fault injection),
   - the per-tag receive cursor (the quadratic re-scan fix), with a hard
     budget on [Engine.stats_mailbox_scanned],
   - payload freezing and size stamping at send,
   - batched delivery interleaved with zero-timeout pure polls. *)

let check = Alcotest.check

let pid i = Pid.of_int i

let fill_one ring ~uid ~tag payload =
  (* Emplace the way the engine's send path does: a pooled frame while one
     is available, the spill path otherwise. *)
  if Mailbox.has_frame ring then
    Frame.fill (Mailbox.emplace_frame ring) ~sender:(pid 1) ~dest:(pid 2)
      ~predicate:Predicate.empty ~tag ~seq:uid ~uid
      ~size:(Message.header_bytes + Payload.size_bytes payload)
      ~cached:None payload
  else
    Mailbox.emplace_spilled ring
      {
        Message.sender = pid 1;
        dest = pid 2;
        predicate = Predicate.empty;
        payload;
        tag;
        seq = uid;
        size = Message.header_bytes + Payload.size_bytes payload;
      }

let pop_front ring =
  let pos = Mailbox.head_pos ring in
  let m = Mailbox.message_at ring pos in
  Mailbox.remove ring pos;
  m

(* ---------------- ring mechanics ---------------- *)

(* Steady-state streaming through a small ring: positions wrap many times
   over, FIFO order holds throughout, and the frame pool never grows past
   its bound — the recycled frames are the whole point. *)
let test_wraparound_pool_stays_flat () =
  let ring = Mailbox.create ~capacity:8 () in
  let next_uid = ref 0 and expect = ref 0 in
  for _round = 1 to 500 do
    for _ = 1 to 3 do
      fill_one ring ~uid:!next_uid ~tag:"t" (Payload.int !next_uid);
      incr next_uid
    done;
    for _ = 1 to 3 do
      (match (pop_front ring).Message.payload with
      | Payload.Int i -> check Alcotest.int "FIFO across wrap" !expect i
      | _ -> Alcotest.fail "unexpected payload");
      incr expect
    done
  done;
  check Alcotest.int "ring drained" 0 (Mailbox.length ring);
  check Alcotest.bool "pool bounded" true (Mailbox.frames_made ring <= 8);
  check Alcotest.int "nothing ever spilled" 0 (Mailbox.spilled_total ring);
  check Alcotest.bool "positions wrapped many times" true
    (Mailbox.tail_pos ring > 8 * 100)

(* A burst deeper than the pool: the overflow takes the spill path and the
   ring keeps accepting (sends are asynchronous — there is nothing to
   block). Order is preserved across the framed/spilled boundary, and
   consuming the burst rearms the pool for the next one. *)
let test_overflow_spills_never_blocks () =
  let ring = Mailbox.create ~capacity:4 () in
  for i = 0 to 19 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i)
  done;
  check Alcotest.int "all 20 accepted" 20 (Mailbox.length ring);
  check Alcotest.int "pool exhausted at its bound" 4 (Mailbox.frames_made ring);
  check Alcotest.int "the rest spilled" 16 (Mailbox.spilled_total ring);
  for i = 0 to 19 do
    match (pop_front ring).Message.payload with
    | Payload.Int j -> check Alcotest.int "order across the boundary" i j
    | _ -> Alcotest.fail "unexpected payload"
  done;
  (* The consumed frames are back in the pool: a second burst frames its
     first 4 again without creating anything. *)
  for i = 100 to 104 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i)
  done;
  check Alcotest.int "no new frames for the second burst" 4
    (Mailbox.frames_made ring)

let test_zero_capacity_is_all_spill () =
  let ring = Mailbox.create ~capacity:0 () in
  check Alcotest.bool "never has a frame" false (Mailbox.has_frame ring);
  for i = 0 to 9 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i)
  done;
  check Alcotest.int "all spilled" 10 (Mailbox.spilled_total ring);
  check Alcotest.int "all held" 10 (Mailbox.length ring);
  for i = 0 to 9 do
    match (pop_front ring).Message.payload with
    | Payload.Int j -> check Alcotest.int "order" i j
    | _ -> Alcotest.fail "unexpected payload"
  done

let test_one_slot_ring () =
  let ring = Mailbox.create ~capacity:1 () in
  for i = 0 to 99 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i);
    match (pop_front ring).Message.payload with
    | Payload.Int j -> check Alcotest.int "ping-pong order" i j
    | _ -> Alcotest.fail "unexpected payload"
  done;
  check Alcotest.int "one frame ever made" 1 (Mailbox.frames_made ring);
  check Alcotest.int "nothing spilled" 0 (Mailbox.spilled_total ring)

(* ---------------- world-split exclusion ---------------- *)

let test_copy_excluding_framed_and_spilled () =
  let ring = Mailbox.create ~capacity:2 () in
  (* 0,1 framed; 2,3 spilled. *)
  for i = 0 to 3 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i)
  done;
  (* Exclude the framed uid 1. *)
  let c1 =
    Mailbox.copy_excluding ring ~uid:1 ~msg:(Mailbox.message_at ring 1)
  in
  check Alcotest.int "one framed entry excluded" 3 (Mailbox.length c1);
  (* Exclude the spilled entry at position 3 (uid -1: spilled entries are
     matched by physical message identity instead). *)
  let c2 =
    Mailbox.copy_excluding ring
      ~uid:(Mailbox.uid_at ring 3)
      ~msg:(Mailbox.message_at ring 3)
  in
  check Alcotest.int "one spilled entry excluded" 3 (Mailbox.length c2);
  (* The copy is independent: consuming from the original must not
     disturb the copy's content (frames were deep-copied). *)
  let before = (Mailbox.message_at c1 (Mailbox.head_pos c1)).Message.payload in
  ignore (pop_front ring);
  ignore (pop_front ring);
  let after = (Mailbox.message_at c1 (Mailbox.head_pos c1)).Message.payload in
  check Alcotest.bool "copy unaffected by original's consumption" true
    (Payload.equal before after)

(* ---------------- frame recycling vs aliasing ---------------- *)

(* The latent bug a shared-slot implementation has: if delivering (or
   duplicating) a frame shared the slot instead of deep-copying it, then
   consuming the original and letting a later send recycle the slot would
   rewrite the copy's bytes under it. [Frame.copy_into] is the fix; this
   pins it down. *)
let test_frame_recycle_cannot_corrupt_copy () =
  let src = Frame.create () in
  Frame.fill src ~sender:(pid 1) ~dest:(pid 2) ~predicate:Predicate.empty
    ~tag:"orig" ~seq:7 ~uid:42 ~size:25 ~cached:None (Payload.int 1234);
  let copy = Frame.create () in
  Frame.copy_into src copy;
  (* Recycle the source slot for an unrelated later send. *)
  Frame.clear src;
  Frame.fill src ~sender:(pid 9) ~dest:(pid 9) ~predicate:Predicate.empty
    ~tag:"evil" ~seq:8 ~uid:43 ~size:29 ~cached:None
    (Payload.str "overwrite");
  check Alcotest.bool "payload survived the recycle" true
    (Payload.equal (Payload.int 1234) (Frame.payload copy));
  check Alcotest.string "tag survived" "orig" (Frame.tag copy);
  check Alcotest.int "uid survived" 42 (Frame.uid copy)

(* End-to-end: a Duplicate fault injects two copies of one send. Each must
   be independently serialised — receiving both, interleaved with enough
   later traffic to recycle every slot, yields two intact copies. *)
let test_duplicate_copies_do_not_alias () =
  let eng = Engine.create ~trace:false () in
  Engine.set_message_fault eng
    (Some
       (fun m ->
         if String.equal m.Message.tag "dup" then Engine.F_duplicate
         else Engine.F_deliver));
  let got = ref [] in
  let n_chaff = 200 in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        (* Two copies of the duplicated send... *)
        for _ = 1 to 2 do
          got := (Engine.receive ctx ~tag:"dup" ()).Message.payload :: !got
        done;
        (* ...then drain the chaff that recycled the slots. *)
        for _ = 1 to n_chaff do
          ignore (Engine.receive ctx ~tag:"chaff" ())
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         Engine.send ctx ~tag:"dup" receiver (Payload.str "precious");
         for i = 1 to n_chaff do
           Engine.send ctx ~tag:"chaff" receiver (Payload.int i)
         done));
  Engine.run eng;
  match !got with
  | [ a; b ] ->
    check Alcotest.bool "first copy intact" true
      (Payload.equal a (Payload.str "precious"));
    check Alcotest.bool "second copy intact" true
      (Payload.equal b (Payload.str "precious"))
  | l -> Alcotest.failf "expected 2 copies, got %d" (List.length l)

(* ---------------- per-tag cursor: the re-scan budget ---------------- *)

(* The old list-walk receive re-scanned every tag-foreign message on every
   poll: [n_foreign] pinned messages and [n_wanted] receives cost
   O(foreign * wanted) slot visits. The per-tag cursor makes the foreign
   prefix a one-time cost. The budget below fails the quadratic
   implementation by an order of magnitude (500 * 100 = 50_000 visits)
   while leaving the cursor implementation generous slack. *)
let test_tag_cursor_scan_budget () =
  let n_foreign = 500 and n_wanted = 100 in
  let eng = Engine.create ~trace:false () in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to n_wanted do
          ignore (Engine.receive ctx ~tag:"want" ())
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n_foreign do
           Engine.send ctx ~tag:"junk" receiver (Payload.int i)
         done;
         for i = 1 to n_wanted do
           Engine.send ctx ~tag:"want" receiver (Payload.int i);
           (* A fresh delivery batch per wanted message, so the receiver
              parks and rescans between them — the worst case for the old
              quadratic walk. *)
           Engine.delay ctx 0.001
         done));
  Engine.run eng;
  let scanned = Engine.stats_mailbox_scanned eng in
  let budget = n_foreign + (8 * n_wanted) + 64 in
  if scanned > budget then
    Alcotest.failf
      "mailbox scan budget exceeded: %d slot visits > %d (quadratic re-scan \
       regression: the old implementation needs ~%d)"
      scanned budget
      (n_foreign * n_wanted);
  check Alcotest.bool "scan budget respected" true (scanned <= budget)

(* ---------------- payload freezing / size stamping ---------------- *)

(* A message's wire size is stamped at send from the payload it carried at
   that moment, for framed (inline-encoded) and spilled (oversized)
   payloads alike — [Message.size_bytes] can no longer go stale relative
   to the payload, because the payload is frozen when it is serialised. *)
let test_size_stamped_and_payload_frozen_at_send () =
  let eng = Engine.create ~trace:false () in
  let small = Payload.int 7 in
  let big = Payload.str (String.make 200 'x') in
  let got = ref [] in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to 2 do
          got := Engine.receive ctx () :: !got
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         Engine.send ctx receiver small;
         Engine.send ctx receiver big));
  Engine.run eng;
  match List.rev !got with
  | [ m1; m2 ] ->
    check Alcotest.int "small size stamped at send"
      (Message.header_bytes + Payload.size_bytes small)
      m1.Message.size;
    check Alcotest.int "stamped size is live size" (Message.size_bytes m1)
      m1.Message.size;
    check Alcotest.bool "small payload round-trips" true
      (Payload.equal small m1.Message.payload);
    check Alcotest.int "oversized payload spills with its size intact"
      (Message.header_bytes + Payload.size_bytes big)
      m2.Message.size;
    check Alcotest.bool "oversized payload round-trips" true
      (Payload.equal big m2.Message.payload)
  | l -> Alcotest.failf "expected 2 messages, got %d" (List.length l)

(* ---------------- batched delivery vs zero-timeout polls ---------------- *)

(* [receive_timeout ~timeout:0.] is a pure poll: before the batch lands it
   must report None without parking; after the batch lands it must drain
   exactly the delivered messages in order. *)
let test_batch_vs_zero_timeout_polls () =
  let n = 50 in
  let eng = Engine.create ~trace:false () in
  let pre_polls = ref (-1) and post = ref [] and final = ref (Some []) in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"poller" (fun ctx ->
        (* Sends are scheduled with a delivery latency: polls at t=0 run
           before the batch can possibly land. *)
        let misses = ref 0 in
        for _ = 1 to 10 do
          match Engine.receive_timeout ctx ~timeout:0. () with
          | None -> incr misses
          | Some _ -> ()
        done;
        pre_polls := !misses;
        (* Sleep past the batch's flush, then drain by pure polling. *)
        Engine.delay ctx 1.0;
        let continue = ref true in
        while !continue do
          match Engine.receive_timeout ctx ~timeout:0. () with
          | Some m -> post := m.Message.payload :: !post
          | None -> continue := false
        done;
        final := (match Engine.receive_timeout ctx ~timeout:0. () with
          | Some _ -> Some []
          | None -> None))
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"source" (fun ctx ->
         for i = 1 to n do
           Engine.send ctx receiver (Payload.int i)
         done));
  Engine.run eng;
  check Alcotest.int "polls before delivery all miss, none park" 10 !pre_polls;
  let drained = List.rev_map (function Payload.Int i -> i | _ -> -1) !post in
  check (Alcotest.list Alcotest.int) "batch drained in order"
    (List.init n (fun i -> i + 1))
    drained;
  check Alcotest.bool "and then the well is dry" true (!final = None)

(* ---------------- the batch-join guard vs zero-delay timers ----------------

   The open-batch join guard used to be "same flush time + unmoved
   event-queue stamp". The stamp counts only pushes: a zero-delay timer
   that pops and runs between two sends at the same virtual time — here by
   filling an ivar whose parked waiter resumes synchronously inside the
   timer's event — moves neither the stamp nor the flush time, so the
   second send silently joined a batch an event had ordered into. An
   intervening event must flush the open batch. *)

let deliveries eng =
  Trace.find_all (Engine.trace eng) ~f:(function
    | Trace.Delivered _ -> true
    | _ -> false)
  |> List.map (function
       | _, Trace.Delivered { msg; _ } -> msg.Message.payload
       | _ -> Payload.Unit)

let run_timer_between_sends ~force_per_entry =
  let eng = Engine.create () in
  if force_per_entry then
    Engine.set_delivery_fault eng (Some (fun _ ~dest:_ -> true));
  let got = ref [] in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to 2 do
          got := (Engine.receive ctx ()).Message.payload :: !got
        done)
  in
  let iv = Engine.Ivar.create () in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"src" (fun ctx ->
         Engine.send ctx receiver (Payload.int 1);
         ignore (Engine.Ivar.read ctx iv);
         Engine.send ctx receiver (Payload.int 2)));
  (* Scheduled after src's start event at the same virtual time: it pops
     (moving no stamp), fills the ivar, and src's continuation sends again
     synchronously inside the timer's event. *)
  Engine.after eng ~delay:0. (fun () -> ignore (Engine.Ivar.try_fill iv 0));
  Engine.run eng;
  (eng, List.rev !got)

let test_zero_delay_timer_flushes_open_batch () =
  let eng, got = run_timer_between_sends ~force_per_entry:false in
  let batches =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Delivered_batch _ -> true
      | _ -> false)
  in
  check Alcotest.int "an intervening event flushed the open batch" 0 batches;
  check
    (Alcotest.list Alcotest.int)
    "per-channel FIFO kept"
    [ 1; 2 ]
    (List.map (function Payload.Int i -> i | _ -> -1) got);
  (* Determinism: the forced per-entry path receives and traces the very
     same delivery sequence. *)
  let eng', got' = run_timer_between_sends ~force_per_entry:true in
  check Alcotest.bool "received order matches the per-entry path" true
    (got = got');
  check Alcotest.bool "traced delivery order matches too" true
    (deliveries eng = deliveries eng');
  (* Control: two back-to-back sends in one event still batch — the new
     guard only breaks joins an event ordered into. *)
  let eng2 = Engine.create () in
  let r2 =
    Engine.spawn eng2 ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to 2 do
          ignore (Engine.receive ctx ())
        done)
  in
  ignore
    (Engine.spawn eng2 ~cloneable:false ~name:"src" (fun ctx ->
         Engine.send ctx r2 (Payload.int 1);
         Engine.send ctx r2 (Payload.int 2)));
  Engine.run eng2;
  check Alcotest.int "uninterrupted sends still coalesce" 1
    (Trace.count (Engine.trace eng2) ~f:(function
      | Trace.Delivered_batch { count = 2; _ } -> true
      | _ -> false))

(* ---------------- spilled duplicates (fault injection) ----------------

   [F_duplicate] on a send whose outbox entry takes the spill path
   (uid = -1 inside the ring) pushes two entries sharing one immutable
   cached message. The shared value must behave as one logical send:
   receivers see both copies adjacent in FIFO order, the copies are
   physically identical (so they cannot diverge, and physical-identity /
   (sender, seq) dedup — what [Majority] uses — collapses them to one),
   and the batched flush path agrees byte-for-byte with the per-entry
   path. *)
let run_burst_with_duplicates ~trace ~n =
  let eng = Engine.create ~trace () in
  (* Duplicate every data message; the burst of [n] in a single event
     overflows the sender's 64-frame outbox pool, so the tail entries —
     and their duplicates — are spilled, not framed. *)
  Engine.set_message_fault eng
    (Some (fun m -> if m.Message.tag = "d" then Engine.F_duplicate else Engine.F_deliver));
  let got = ref [] in
  let receiver =
    Engine.spawn eng ~cloneable:false ~name:"sink" (fun ctx ->
        for _ = 1 to 2 * n do
          got := Engine.receive ctx ~tag:"d" () :: !got
        done)
  in
  ignore
    (Engine.spawn eng ~cloneable:false ~name:"burst" (fun ctx ->
         for i = 0 to n - 1 do
           Engine.send ctx ~tag:"d" receiver (Payload.int i)
         done));
  Engine.run eng;
  List.rev !got

let test_spilled_duplicates_stay_one_logical_send () =
  let n = 100 in
  let got = run_burst_with_duplicates ~trace:false ~n in
  check Alcotest.int "every copy of every send arrived" (2 * n)
    (List.length got);
  (* FIFO with copies adjacent: seq sequence is 0,0,1,1,2,2,... *)
  List.iteri
    (fun k m ->
      check Alcotest.int
        (Printf.sprintf "copy order @%d" k)
        (k / 2) m.Message.seq)
    got;
  (* Physical identity: both copies of a spilled send are the one shared
     immutable message — aliasing cannot make them diverge, and dedup by
     physical identity (or (sender, seq), as Majority tallies votes)
     counts one vote. Sampled well past the 64-frame pool. *)
  let copies s = List.filter (fun m -> m.Message.seq = s) got in
  (match copies 90 with
  | [ a; b ] ->
    check Alcotest.bool "spilled duplicate shares the message value" true
      (a == b)
  | l -> Alcotest.failf "expected 2 copies of seq 90, got %d" (List.length l));
  let distinct = Hashtbl.create 64 in
  List.iter
    (fun m -> Hashtbl.replace distinct (m.Message.sender, m.Message.seq) ())
    got;
  check Alcotest.int "dedup collapses every pair to one logical send" n
    (Hashtbl.length distinct);
  (* The per-entry (traced) path delivers the identical sequence. *)
  let got' = run_burst_with_duplicates ~trace:true ~n in
  check Alcotest.bool "batched path = per-entry path" true
    (List.map (fun m -> (m.Message.seq, m.Message.payload)) got
    = List.map (fun m -> (m.Message.seq, m.Message.payload)) got')

(* ---------------- bulk transfer / adoption ---------------- *)

let test_transfer_into_empty_ring_adopts () =
  let src = Mailbox.create ~capacity:4 () in
  for i = 0 to 9 do
    fill_one src ~uid:i ~tag:"t" (Payload.int i)
  done;
  let dst = Mailbox.create ~capacity:4 () in
  ignore (Mailbox.cursor dst "t");
  Mailbox.transfer_upto src ~upto:(Mailbox.tail_pos src) dst;
  check Alcotest.int "all moved" 10 (Mailbox.length dst);
  check Alcotest.int "source empty" 0 (Mailbox.length src);
  let c = Mailbox.cursor dst "t" in
  check Alcotest.int "destination cursor reset to the adopted head"
    (Mailbox.head_pos dst) c.Mailbox.cpos;
  for i = 0 to 9 do
    match (pop_front dst).Message.payload with
    | Payload.Int j -> check Alcotest.int "order preserved" i j
    | _ -> Alcotest.fail "unexpected payload"
  done;
  (* The source inherited usable (empty) state: it keeps working. *)
  fill_one src ~uid:100 ~tag:"t" (Payload.int 100);
  check Alcotest.int "source reusable after adoption" 1 (Mailbox.length src)

let test_transfer_into_nonempty_ring_copies () =
  let src = Mailbox.create ~capacity:2 () in
  for i = 10 to 14 do
    fill_one src ~uid:i ~tag:"t" (Payload.int i)
  done;
  let dst = Mailbox.create ~capacity:2 () in
  fill_one dst ~uid:0 ~tag:"t" (Payload.int 0);
  Mailbox.transfer_upto src ~upto:(Mailbox.tail_pos src) dst;
  check Alcotest.int "appended behind the resident entry" 6
    (Mailbox.length dst);
  check Alcotest.int "source drained" 0 (Mailbox.length src);
  let expected = [ 0; 10; 11; 12; 13; 14 ] in
  List.iter
    (fun e ->
      match (pop_front dst).Message.payload with
      | Payload.Int j -> check Alcotest.int "arrival order" e j
      | _ -> Alcotest.fail "unexpected payload")
    expected

(* Regression: whole-batch adoption used to skip the spill accounting the
   per-entry path records. A destination that adopts a batch containing
   spilled entries must show exactly the [spilled_total] the copying path
   would have produced — the two flush paths are required to be
   indistinguishable. Pre-fix this reported 0 after an adoption. *)
let test_adoption_spilled_accounting_matches_copy_path () =
  let mk_src () =
    let src = Mailbox.create ~capacity:4 () in
    for i = 0 to 9 do
      fill_one src ~uid:i ~tag:"t" (Payload.int i)
    done;
    src
  in
  (* Reference: the forced per-entry path (a partial transfer first, so
     the adoption guard never applies). *)
  let src = mk_src () in
  let dst_copy = Mailbox.create ~capacity:4 () in
  Mailbox.transfer_upto src ~upto:(Mailbox.head_pos src + 1) dst_copy;
  Mailbox.transfer_upto src ~upto:(Mailbox.tail_pos src) dst_copy;
  (* Same batch through the O(1) adoption path. *)
  let src = mk_src () in
  let dst_adopt = Mailbox.create ~capacity:4 () in
  Mailbox.transfer_upto src ~upto:(Mailbox.tail_pos src) dst_adopt;
  check Alcotest.int "both paths moved everything" (Mailbox.length dst_copy)
    (Mailbox.length dst_adopt);
  check Alcotest.int "source spilled 6 of 10" 6 (Mailbox.spilled_total src);
  check Alcotest.int "adoption accounts the spilled entries"
    (Mailbox.spilled_total dst_copy)
    (Mailbox.spilled_total dst_adopt);
  check Alcotest.int "live spill census matches too"
    (Mailbox.spilled_live dst_copy)
    (Mailbox.spilled_live dst_adopt);
  check Alcotest.int "source's live spill census drained" 0
    (Mailbox.spilled_live src);
  (* Draining returns the census to zero while the totals stay put. *)
  for i = 0 to 9 do
    match (pop_front dst_adopt).Message.payload with
    | Payload.Int j -> check Alcotest.int "adopted order" i j
    | _ -> Alcotest.fail "unexpected payload"
  done;
  check Alcotest.int "drained census" 0 (Mailbox.spilled_live dst_adopt);
  check Alcotest.int "total is monotone" 6 (Mailbox.spilled_total dst_adopt)

(* The destination pool exhausting mid-batch: the first entries of the
   transfer land in destination frames, the rest spill — and the
   spilled-vs-framed interleaving must preserve per-channel FIFO order
   exactly (locking the current behavior, which is correct: entries are
   appended in position order whichever representation they take). *)
let test_transfer_fifo_when_dst_pool_exhausts_mid_batch () =
  let src = Mailbox.create ~capacity:8 () in
  for i = 10 to 17 do
    fill_one src ~uid:i ~tag:"t" (Payload.int i)
  done;
  (* Two resident framed entries leave the 4-frame destination pool with
     only two free frames for an 8-entry batch. *)
  let dst = Mailbox.create ~capacity:4 () in
  fill_one dst ~uid:0 ~tag:"t" (Payload.int 0);
  fill_one dst ~uid:1 ~tag:"t" (Payload.int 1);
  Mailbox.transfer_upto src ~upto:(Mailbox.tail_pos src) dst;
  check Alcotest.int "all appended" 10 (Mailbox.length dst);
  check Alcotest.int "pool stayed at its bound" 4 (Mailbox.frames_made dst);
  check Alcotest.int "overflow of the batch spilled" 6
    (Mailbox.spilled_total dst);
  check Alcotest.int "spill census agrees" 6 (Mailbox.spilled_live dst);
  List.iteri
    (fun k e ->
      match (pop_front dst).Message.payload with
      | Payload.Int j ->
        check Alcotest.int (Printf.sprintf "FIFO across the boundary @%d" k) e j
      | _ -> Alcotest.fail "unexpected payload")
    [ 0; 1; 10; 11; 12; 13; 14; 15; 16; 17 ];
  check Alcotest.int "census zero after drain" 0 (Mailbox.spilled_live dst)

let test_drop_upto_discards () =
  let ring = Mailbox.create ~capacity:2 () in
  for i = 0 to 5 do
    fill_one ring ~uid:i ~tag:"t" (Payload.int i)
  done;
  Mailbox.drop_upto ring ~upto:(Mailbox.head_pos ring + 4);
  check Alcotest.int "four dropped" 2 (Mailbox.length ring);
  (match (pop_front ring).Message.payload with
  | Payload.Int j -> check Alcotest.int "survivors keep order" 4 j
  | _ -> Alcotest.fail "unexpected payload");
  check Alcotest.bool "dropped frames back in the pool" true
    (Mailbox.has_frame ring)

let () =
  Alcotest.run "mailbox"
    [
      ( "ring",
        [
          Alcotest.test_case "wrap-around keeps the pool flat" `Quick
            test_wraparound_pool_stays_flat;
          Alcotest.test_case "overflow spills, never blocks" `Quick
            test_overflow_spills_never_blocks;
          Alcotest.test_case "zero capacity is all-spill" `Quick
            test_zero_capacity_is_all_spill;
          Alcotest.test_case "one-slot ring" `Quick test_one_slot_ring;
          Alcotest.test_case "copy_excluding over framed and spilled" `Quick
            test_copy_excluding_framed_and_spilled;
        ] );
      ( "aliasing",
        [
          Alcotest.test_case "frame recycle cannot corrupt a copy" `Quick
            test_frame_recycle_cannot_corrupt_copy;
          Alcotest.test_case "duplicate fault copies do not alias" `Quick
            test_duplicate_copies_do_not_alias;
          Alcotest.test_case "spilled duplicates stay one logical send" `Quick
            test_spilled_duplicates_stay_one_logical_send;
        ] );
      ( "hot path",
        [
          Alcotest.test_case "per-tag cursor scan budget" `Quick
            test_tag_cursor_scan_budget;
          Alcotest.test_case "size stamped and payload frozen at send" `Quick
            test_size_stamped_and_payload_frozen_at_send;
          Alcotest.test_case "batched delivery vs zero-timeout polls" `Quick
            test_batch_vs_zero_timeout_polls;
          Alcotest.test_case "zero-delay timer flushes the open batch" `Quick
            test_zero_delay_timer_flushes_open_batch;
        ] );
      ( "bulk",
        [
          Alcotest.test_case "transfer into empty ring adopts" `Quick
            test_transfer_into_empty_ring_adopts;
          Alcotest.test_case "transfer into non-empty ring copies" `Quick
            test_transfer_into_nonempty_ring_copies;
          Alcotest.test_case "adoption spilled accounting = copy path" `Quick
            test_adoption_spilled_accounting_matches_copy_path;
          Alcotest.test_case "FIFO when destination pool exhausts mid-batch"
            `Quick test_transfer_fifo_when_dst_pool_exhausts_mid_batch;
          Alcotest.test_case "drop_upto discards a prefix" `Quick
            test_drop_upto_discards;
        ] );
    ]
