(* Tests for checkpoint/restart of address spaces (the rfork substrate). *)

let check = Alcotest.check

let model = Cost_model.uniform ~page_size:256 ()

let mk_space () =
  Address_space.create (Frame_store.create ~page_size:256) model

let test_roundtrip_contents () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 42;
  Address_space.set_string sp ~addr:1000 "checkpointed";
  Address_space.set_float sp ~addr:5000 2.5;
  let image = Checkpoint.capture sp in
  let sp' = Checkpoint.restore (Frame_store.create ~page_size:256) model image in
  check Alcotest.int "int survives" 42 (Address_space.get_int sp' ~addr:0);
  check Alcotest.string "string survives" "checkpointed"
    (Address_space.get_string sp' ~addr:1000 ~len:12);
  check (Alcotest.float 1e-9) "float survives" 2.5
    (Address_space.get_float sp' ~addr:5000);
  check Alcotest.bool "maps identical" true
    (Page_map.snapshot_equal (Address_space.map sp) (Address_space.map sp'))

let test_capture_does_not_disturb () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 1;
  let before = Address_space.cow_copies sp in
  ignore (Checkpoint.capture sp);
  check Alcotest.int "no copies made" before (Address_space.cow_copies sp);
  check Alcotest.int "value intact" 1 (Address_space.get_int sp ~addr:0)

let test_restored_space_is_private () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 7;
  let image = Checkpoint.capture sp in
  let store' = Frame_store.create ~page_size:256 in
  let sp' = Checkpoint.restore store' model image in
  Address_space.set_int sp' ~addr:0 8;
  check Alcotest.int "original unaffected" 7 (Address_space.get_int sp ~addr:0);
  check Alcotest.int "restored updated" 8 (Address_space.get_int sp' ~addr:0)

let test_sparse_pages_preserved () =
  let sp = mk_space () in
  Address_space.set_u8 sp ~addr:0 1;
  Address_space.set_u8 sp ~addr:(100 * 256) 2;
  let image = Checkpoint.capture sp in
  check Alcotest.int "two mapped pages" 2 (Checkpoint.mapped_pages image);
  let sp' = Checkpoint.restore (Frame_store.create ~page_size:256) model image in
  check Alcotest.int "sparse page restored" 2
    (Address_space.get_u8 sp' ~addr:(100 * 256));
  check Alcotest.int "unmapped reads zero" 0 (Address_space.get_u8 sp' ~addr:256)

let test_bytes_roundtrip () =
  let sp = mk_space () in
  Address_space.set_string sp ~addr:10 "wire format";
  let image = Checkpoint.capture sp in
  let b = Checkpoint.to_bytes image in
  check Alcotest.int "wire size" (Checkpoint.size_bytes image) (Bytes.length b);
  let image' = Checkpoint.of_bytes b in
  check Alcotest.int "pages preserved" (Checkpoint.mapped_pages image)
    (Checkpoint.mapped_pages image');
  let sp' = Checkpoint.restore (Frame_store.create ~page_size:256) model image' in
  check Alcotest.string "contents preserved over the wire" "wire format"
    (Address_space.get_string sp' ~addr:10 ~len:11)

let test_of_bytes_rejects_garbage () =
  Alcotest.check_raises "short input"
    (Invalid_argument "Checkpoint.of_bytes: malformed image") (fun () ->
      ignore (Checkpoint.of_bytes (Bytes.create 3)));
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 1;
  let b = Checkpoint.to_bytes (Checkpoint.capture sp) in
  let truncated = Bytes.sub b 0 (Bytes.length b - 1) in
  Alcotest.check_raises "truncated input"
    (Invalid_argument "Checkpoint.of_bytes: malformed image") (fun () ->
      ignore (Checkpoint.of_bytes truncated))

(* Regression: [of_bytes] used to accept images whose framing was intact
   but whose page table was corrupt — a duplicated vpage entry restores by
   silently double-writing the page (last entry wins), and a negative
   vpage poisons the page map. Both must be rejected up front. *)
let test_of_bytes_rejects_corrupt_page_table () =
  let sp = mk_space () in
  Address_space.set_u8 sp ~addr:0 1;
  (* page 0 *)
  Address_space.set_u8 sp ~addr:256 2;
  (* page 1 *)
  let b = Checkpoint.to_bytes (Checkpoint.capture sp) in
  (* Layout: 16-byte header, then per page an 8-byte vpage field followed
     by 256 bytes of contents. The second page's vpage field sits at
     16 + 8 + 256. *)
  let second_vpage_off = 16 + 8 + 256 in
  let corrupt v =
    let b' = Bytes.copy b in
    Bytes.set_int64_le b' second_vpage_off (Int64.of_int v);
    b'
  in
  Alcotest.check_raises "duplicate vpage entry"
    (Invalid_argument "Checkpoint.of_bytes: malformed image") (fun () ->
      ignore (Checkpoint.of_bytes (corrupt 0)));
  Alcotest.check_raises "negative vpage entry"
    (Invalid_argument "Checkpoint.of_bytes: malformed image") (fun () ->
      ignore (Checkpoint.of_bytes (corrupt (-1))));
  (* The uncorrupted image still parses: the checks reject the corruption,
     not the framing. *)
  Alcotest.check Alcotest.int "pristine image still parses" 2
    (Checkpoint.mapped_pages (Checkpoint.of_bytes b))

(* Regression: the framing check used to compute
   [count * (per_page_header + psize)] straight from wire values, so a
   crafted header could wrap the product around the native int range until
   it collided with the buffer length — the parse then died as an
   out-of-range access deep inside [Bytes.sub] instead of the documented
   error. Sizes are now bounded field by field before any multiplication. *)
let test_of_bytes_overflow_safe () =
  let malformed = Invalid_argument "Checkpoint.of_bytes: malformed image" in
  let header ~psize ~count =
    let b = Bytes.create 16 in
    Bytes.set_int64_le b 0 (Int64.of_int psize);
    Bytes.set_int64_le b 8 count;
    b
  in
  (* psize 248 gives a per-page stride of 256; count 2^56 makes the page
     table 2^64 bytes, which wraps to 0 and "matches" the 16-byte buffer. *)
  Alcotest.check_raises "wrapping count" malformed (fun () ->
      ignore
        (Checkpoint.of_bytes (header ~psize:248 ~count:(Int64.shift_left 1L 56))));
  Alcotest.check_raises "psize beyond the buffer" malformed (fun () ->
      ignore (Checkpoint.of_bytes (header ~psize:max_int ~count:1L)));
  Alcotest.check_raises "negative count" malformed (fun () ->
      ignore (Checkpoint.of_bytes (header ~psize:256 ~count:(-1L))));
  (* Oversized input — trailing junk after a well-formed image — is
     rejected too, not silently ignored. *)
  let sp = mk_space () in
  Address_space.set_u8 sp ~addr:0 7;
  let b = Checkpoint.to_bytes (Checkpoint.capture sp) in
  Alcotest.check_raises "oversized input" malformed (fun () ->
      ignore (Checkpoint.of_bytes (Bytes.cat b (Bytes.make 1 '\000'))))

let test_restore_page_size_mismatch () =
  let sp = mk_space () in
  Address_space.set_int sp ~addr:0 1;
  let image = Checkpoint.capture sp in
  Alcotest.check_raises "mismatch"
    (Invalid_argument "Checkpoint.restore: page size mismatch") (fun () ->
      ignore
        (Checkpoint.restore (Frame_store.create ~page_size:512)
           (Cost_model.uniform ~page_size:512 ())
           image))

let test_transfer_cost_calibration () =
  (* The 70K rfork of E5: 18 pages of 4K under the LAN profile. *)
  let m = Cost_model.distributed_lan in
  let store = Frame_store.create ~page_size:m.Cost_model.page_size in
  let sp = Address_space.create ~size_hint:(70 * 1024) store m in
  let image = Checkpoint.capture sp in
  check Alcotest.int "18 pages" 18 (Checkpoint.mapped_pages image);
  check Alcotest.bool "transfer ~1.0 s" true
    (Float.abs (Checkpoint.transfer_cost m image -. 1.0) < 0.01)

let prop_capture_restore_identity =
  QCheck.Test.make ~name:"capture/restore preserves every written byte"
    ~count:200
    QCheck.(list_of_size Gen.(int_range 1 30) (pair (int_bound 5000) (int_bound 255)))
    (fun writes ->
      let sp = mk_space () in
      List.iter (fun (addr, v) -> Address_space.set_u8 sp ~addr v) writes;
      let image = Checkpoint.of_bytes (Checkpoint.to_bytes (Checkpoint.capture sp)) in
      let sp' = Checkpoint.restore (Frame_store.create ~page_size:256) model image in
      Page_map.snapshot_equal (Address_space.map sp) (Address_space.map sp'))

let () =
  Alcotest.run "checkpoint"
    [
      ( "checkpoint",
        [
          Alcotest.test_case "roundtrip contents" `Quick test_roundtrip_contents;
          Alcotest.test_case "capture is read-only" `Quick test_capture_does_not_disturb;
          Alcotest.test_case "restored space is private" `Quick
            test_restored_space_is_private;
          Alcotest.test_case "sparse pages" `Quick test_sparse_pages_preserved;
          Alcotest.test_case "wire roundtrip" `Quick test_bytes_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick test_of_bytes_rejects_garbage;
          Alcotest.test_case "rejects corrupt page table" `Quick
            test_of_bytes_rejects_corrupt_page_table;
          Alcotest.test_case "overflow-safe framing" `Quick
            test_of_bytes_overflow_safe;
          Alcotest.test_case "page size mismatch" `Quick test_restore_page_size_mismatch;
          Alcotest.test_case "transfer cost calibration" `Quick
            test_transfer_cost_calibration;
          QCheck_alcotest.to_alcotest prop_capture_restore_identity;
        ] );
    ]
