(* Scale and stress tests: the engine and the block machinery at sizes well
   beyond the unit tests, plus coverage for the remaining small API
   surfaces. *)

let check = Alcotest.check

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"scale-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "root did not complete"

let test_large_mesh_completes () =
  (* 150 processes, each pinging the next in a ring, three rounds. *)
  let eng = Engine.create ~trace:false () in
  let n = 150 in
  let pids = Array.of_list (Engine.fresh_pids eng n) in
  let received = ref 0 in
  Array.iteri
    (fun i pid ->
      ignore
        (Engine.spawn eng ~pid (fun ctx ->
             for r = 1 to 3 do
               Engine.send ctx pids.((i + 1) mod n) (Payload.int r);
               match Engine.receive_timeout ctx ~timeout:100. () with
               | Some _ -> incr received
               | None -> ()
             done)))
    pids;
  Engine.run eng;
  check Alcotest.int "every ping answered" (3 * n) !received;
  check Alcotest.int "all processes done" 0 (Engine.live_count eng)

let test_wide_alternative_block () =
  (* 64 alternatives; elapsed is the minimum cost; 63 eliminated. *)
  let eng = Engine.create ~trace:false () in
  let n = 64 in
  let r =
    Concurrent.run_toplevel eng
      (List.init n (fun i ->
           Alternative.fixed ~cost:(1. +. (0.1 *. float_of_int i)) i))
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { index = 0; value = 0 } -> ()
  | _ -> Alcotest.fail "cheapest of 64 must win");
  check (Alcotest.float 1e-9) "min cost" 1. r.Concurrent.elapsed;
  check Alcotest.int "spawned all" n r.Concurrent.spawned

let test_deep_sequential_blocks () =
  (* 100 alternative blocks executed back to back in one process. *)
  let eng = Engine.create ~trace:false () in
  let total =
    in_process eng (fun ctx ->
        let acc = ref 0 in
        for i = 1 to 100 do
          match
            Concurrent.run ctx
              [ Alternative.fixed ~cost:0.2 i; Alternative.fixed ~cost:0.1 (2 * i) ]
          with
          | { Concurrent.outcome = Alt_block.Selected { value; _ }; _ } ->
            acc := !acc + value
          | _ -> Alcotest.fail "block failed"
        done;
        !acc)
  in
  (* The 0.1-cost alternative (value 2i) always wins. *)
  check Alcotest.int "sum of winners" (2 * 5050) total;
  check (Alcotest.float 1e-6) "100 x 0.1s" 10. (Engine.now eng)

let test_many_worlds_scale () =
  (* Ten speculative senders split one receiver into many worlds; exactly
     one history survives once all resolve. *)
  let eng = Engine.create ~trace:false () in
  let published = ref [] in
  let recv =
    Engine.spawn eng ~name:"recv" (fun ctx ->
        let local = ref 0 in
        let rec loop () =
          match Engine.receive_timeout ctx ~timeout:30. () with
          | Some m ->
            local := !local + Payload.get_int m.Message.payload;
            loop ()
          | None -> ()
        in
        loop ();
        published := !local :: !published)
  in
  let n = 10 in
  let winner = 6 in
  for i = 0 to n - 1 do
    let pid = List.hd (Engine.fresh_pids eng 1) in
    ignore
      (Engine.spawn eng ~pid
         ~predicate:(Predicate.make ~must_complete:[ pid ] ~must_fail:[])
         (fun ctx ->
           Engine.delay ctx (0.1 *. float_of_int (i + 1));
           Engine.send ctx recv (Payload.int (1 lsl i));
           Engine.delay ctx 1.;
           if i <> winner then Engine.abort ctx "loses"))
  done;
  Engine.run eng;
  check Alcotest.(list int) "single surviving history: the winner's bit"
    [ 1 lsl winner ] !published

let test_deep_prolog_recursion () =
  let db = Database.with_prelude () in
  ignore
    (Database.add_program db
       "count(0, []). count(N, [N|T]) :- N > 0, M is N - 1, count(M, T).");
  match Solve.query db "count(400, L), length(L, Len)" with
  | Ok (sol :: _) ->
    check Alcotest.bool "400-deep recursion" true
      (List.assoc_opt "Len" sol = Some (Term.Int 400))
  | _ -> Alcotest.fail "deep recursion failed"

(* ---------------- residual API coverage ---------------- *)

let test_parser_clause_of_string_errors () =
  (try
     ignore (Parser.clause_of_string "a. b.");
     Alcotest.fail "two clauses must be rejected"
   with Parser.Parse_error _ -> ());
  let c = Parser.clause_of_string "f(x)." in
  check Alcotest.bool "fact parsed" true (c.Parser.body = None)

let test_checkpoint_empty_space () =
  let model = Cost_model.uniform ~page_size:256 () in
  let sp = Address_space.create (Frame_store.create ~page_size:256) model in
  let image = Checkpoint.capture sp in
  check Alcotest.int "no pages" 0 (Checkpoint.mapped_pages image);
  let sp' =
    Checkpoint.restore (Frame_store.create ~page_size:256) model
      (Checkpoint.of_bytes (Checkpoint.to_bytes image))
  in
  check Alcotest.int "restored empty" 0 (Address_space.mapped_pages sp')

let test_schemes_distributions () =
  let rng = Rng.create ~seed:5 in
  let u =
    Schemes.generate ~rng ~inputs:100 ~alternatives:2 ~dist:(`Uniform (2., 4.))
      ~description:"u"
  in
  Array.iter
    (Array.iter (fun v ->
         if v < 2. || v >= 4. then Alcotest.fail "uniform out of range"))
    u.Schemes.times;
  let e =
    Schemes.generate ~rng ~inputs:100 ~alternatives:2 ~dist:(`Exponential 3.)
      ~description:"e"
  in
  Array.iter
    (Array.iter (fun v -> if v < 0. then Alcotest.fail "exponential negative"))
    e.Schemes.times

let test_run_random_spread () =
  (* Over many seeds, run_random must pick different alternatives. *)
  let picked = Hashtbl.create 8 in
  for seed = 1 to 40 do
    let eng = Engine.create ~trace:false () in
    let rng = Rng.create ~seed in
    let outcome =
      in_process eng (fun ctx ->
          Alt_block.run_random ctx ~rng (List.init 4 (fun i -> Alternative.fixed ~cost:1. i)))
    in
    match outcome with
    | Alt_block.Selected { index; _ } -> Hashtbl.replace picked index ()
    | Alt_block.Block_failed _ -> Alcotest.fail "no failure expected"
  done;
  check Alcotest.bool "at least three of four alternatives chosen" true
    (Hashtbl.length picked >= 3)

let () =
  Alcotest.run "scale"
    [
      ( "scale",
        [
          Alcotest.test_case "150-process ring" `Quick test_large_mesh_completes;
          Alcotest.test_case "64-way block" `Quick test_wide_alternative_block;
          Alcotest.test_case "100 sequential blocks" `Quick test_deep_sequential_blocks;
          Alcotest.test_case "ten speculative senders" `Quick test_many_worlds_scale;
          Alcotest.test_case "deep prolog recursion" `Quick test_deep_prolog_recursion;
        ] );
      ( "residual coverage",
        [
          Alcotest.test_case "clause_of_string" `Quick test_parser_clause_of_string_errors;
          Alcotest.test_case "empty checkpoint" `Quick test_checkpoint_empty_space;
          Alcotest.test_case "scheme distributions" `Quick test_schemes_distributions;
          Alcotest.test_case "run_random spread" `Quick test_run_random_spread;
        ] );
    ]
