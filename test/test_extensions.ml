(* Tests for the extension features: guard placement (section 3.2), remote
   placement of alternatives (section 5.1.2 / rfork), and transparent
   replication combined with alternatives (section 6). *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

let mk_engine ?(model = Cost_model.uniform ()) () =
  Engine.create ~model ~trace:false ()

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"ext-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "root did not complete"

let with_policy ?(guards = Concurrent.Guard_in_child)
    ?(placement = Concurrent.Local_spawn) () =
  { Concurrent.default_policy with guards; placement }

(* ---------------- guard placement ---------------- *)

let guarded_alts ~count_evals =
  [
    Alternative.make ~name:"closed"
      ~guard:(fun _ ->
        incr count_evals;
        false)
      (fun ctx ->
        Engine.delay ctx 0.1;
        "closed");
    Alternative.make ~name:"open"
      ~guard:(fun _ ->
        incr count_evals;
        true)
      (fun ctx ->
        Engine.delay ctx 1.;
        "open");
  ]

let test_guard_before_spawn_skips_closed () =
  let eng = mk_engine () in
  let evals = ref 0 in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~guards:Concurrent.Guard_before_spawn ())
          (guarded_alts ~count_evals:evals))
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { index = 1; value = "open" } -> ()
  | _ -> Alcotest.fail "open alternative must win");
  check Alcotest.int "only the open one spawned" 1 r.Concurrent.spawned;
  check Alcotest.int "one child pid" 1 (List.length r.Concurrent.children);
  check Alcotest.int "guards evaluated once each, in the parent" 2 !evals

let test_guard_before_spawn_all_closed () =
  let eng = mk_engine () in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~guards:Concurrent.Guard_before_spawn ())
          [ Alternative.make ~guard:(fun _ -> false) (fun _ -> 0) ])
  in
  (match r.Concurrent.outcome with
  | Alt_block.Block_failed "no open alternative" -> ()
  | _ -> Alcotest.fail "expected immediate failure");
  check Alcotest.int "nothing spawned" 0 r.Concurrent.spawned;
  check cf "no time consumed" 0. r.Concurrent.elapsed

let test_guard_at_sync_runs_body_first () =
  (* With the guard at the sync point, the body of a closed alternative
     still executes (and wastes work) before being rejected. *)
  let eng = mk_engine () in
  let body_ran = ref false in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~guards:Concurrent.Guard_at_sync ())
          [
            Alternative.make ~name:"closed" ~guard:(fun _ -> false) (fun ctx ->
                body_ran := true;
                Engine.delay ctx 0.1;
                "closed");
            Alternative.fixed ~name:"open" ~cost:1. "open";
          ])
  in
  check Alcotest.bool "closed body ran" true !body_ran;
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = "open"; _ } -> ()
  | _ -> Alcotest.fail "open must still win"

let test_guard_redundant_consistent () =
  let eng = mk_engine () in
  let evals = ref 0 in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~guards:Concurrent.Guard_redundant ())
          (guarded_alts ~count_evals:evals))
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = "open"; _ } -> ()
  | _ -> Alcotest.fail "open must win");
  (* Closed guard evaluated once (before spawn, then skipped); open guard
     evaluated before spawn + in child + at sync = 3. *)
  check Alcotest.int "redundant evaluations" 4 !evals

let test_guard_in_child_spawns_all () =
  let eng = mk_engine () in
  let evals = ref 0 in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx ~policy:(with_policy ())
          (guarded_alts ~count_evals:evals))
  in
  check Alcotest.int "both spawned" 2 r.Concurrent.spawned

(* ---------------- remote placement ---------------- *)

let remote_setup_engine () =
  let model = Cost_model.distributed_lan in
  let eng = Engine.create ~model ~trace:false () in
  let space =
    Address_space.create ~size_hint:(70 * 1024) (Engine.frame_store eng) model
  in
  (eng, space)

let test_remote_setup_costs_rfork () =
  let eng, space = remote_setup_engine () in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_spawn ())
          [ Alternative.fixed ~cost:0.1 "a"; Alternative.fixed ~cost:0.2 "b" ])
  in
  (* Two rforks of a 70K image at ~1.0 s each. *)
  check Alcotest.bool "setup ~2x rfork" true
    (Float.abs (r.Concurrent.setup_cost -. 2.004) < 0.02);
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = "a"; _ } -> ()
  | _ -> Alcotest.fail "fastest remote alternative must win"

let test_remote_state_ships_back () =
  let eng, space = remote_setup_engine () in
  let heap = Heap.create space in
  let cell = Heap.int_cell heap 0 in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_spawn ())
          [
            Alternative.make (fun ctx ->
                Mem.set ctx cell 99;
                Engine.delay ctx 0.1;
                "writer");
          ])
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = "writer"; _ } -> ()
  | _ -> Alcotest.fail "writer must win");
  check Alcotest.int "remote write visible after absorption" 99
    (Address_space.get_int space ~addr:(Heap.cell_addr cell));
  (* Shipping the winner's image back is part of the selection cost. *)
  check Alcotest.bool "selection includes return transfer" true
    (r.Concurrent.selection_cost > 0.9)

let test_remote_children_have_private_pages () =
  let eng, space = remote_setup_engine () in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_spawn ())
          [
            Alternative.make (fun ctx ->
                (match Engine.space ctx with
                | Some sp ->
                  (* A remote image is fully private: no COW faults. *)
                  Address_space.touch sp ~addr:0 ~len:(70 * 1024);
                  Engine.charge_memory ctx
                | None -> ());
                Engine.delay ctx 0.01;
                "remote");
          ])
  in
  check Alcotest.int "no COW faults on a restored image" 0
    r.Concurrent.child_cow_copies

let test_remote_slower_than_local_for_small_work () =
  let run placement =
    let eng, space = remote_setup_engine () in
    (in_process ~space eng (fun ctx ->
         Concurrent.run ctx ~policy:(with_policy ~placement ())
           [ Alternative.fixed ~cost:0.05 0; Alternative.fixed ~cost:0.1 1 ]))
      .Concurrent.elapsed
  in
  check Alcotest.bool "rfork overhead dominates small computations" true
    (run Concurrent.Remote_spawn > 10. *. run Concurrent.Local_spawn)

let test_on_demand_setup_is_cheap () =
  let eng, space = remote_setup_engine () in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_on_demand ())
          [ Alternative.fixed ~cost:0.1 "a"; Alternative.fixed ~cost:0.2 "b" ])
  in
  (* No image ships at spawn: setup is two (fork + control round trip)s,
     far below the ~2 s of eager checkpointing. *)
  check Alcotest.bool "setup below 0.2 s" true (r.Concurrent.setup_cost < 0.2);
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = "a"; _ } -> ()
  | _ -> Alcotest.fail "fastest must win"

let test_on_demand_faults_pay_network_prices () =
  let eng, space = remote_setup_engine () in
  let model = Cost_model.distributed_lan in
  let touch_pages = 5 in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_on_demand ())
          [
            Alternative.make (fun ctx ->
                (match Engine.space ctx with
                | Some sp ->
                  Address_space.touch sp ~addr:0
                    ~len:(touch_pages * model.Cost_model.page_size);
                  Engine.charge_memory ctx
                | None -> ());
                "toucher");
          ])
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = "toucher"; _ } -> ()
  | _ -> Alcotest.fail "must win");
  (* Elapsed includes 5 faults at (copy + network fetch) each, charged to
     the child's clock. *)
  let per_fault = model.Cost_model.page_copy +. model.Cost_model.remote_per_page in
  check Alcotest.bool "faults priced with the network" true
    (r.Concurrent.elapsed > float_of_int touch_pages *. per_fault);
  check Alcotest.int "five pages privatised" touch_pages r.Concurrent.child_cow_copies

let test_on_demand_ships_back_only_dirty () =
  (* Compare selection costs: the eager scheme ships the whole 18-page
     image back; on-demand ships only the one dirty page. *)
  let run placement =
    let eng, space = remote_setup_engine () in
    let heap = Heap.create space in
    let cell = Heap.int_cell heap 0 in
    (in_process ~space eng (fun ctx ->
         Concurrent.run ctx ~policy:(with_policy ~placement ())
           [
             Alternative.make (fun ctx ->
                 Mem.set ctx cell 1;
                 Engine.delay ctx 0.1;
                 ());
           ]))
      .Concurrent.selection_cost
  in
  check Alcotest.bool "on-demand return transfer much cheaper" true
    (run Concurrent.Remote_on_demand < 0.3 *. run Concurrent.Remote_spawn)

let test_on_demand_state_still_ships_back () =
  let eng, space = remote_setup_engine () in
  let heap = Heap.create space in
  let cell = Heap.int_cell heap 0 in
  let r =
    in_process ~space eng (fun ctx ->
        Concurrent.run ctx
          ~policy:(with_policy ~placement:Concurrent.Remote_on_demand ())
          [
            Alternative.make (fun ctx ->
                Mem.set ctx cell 31;
                Engine.delay ctx 0.1;
                ());
          ])
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected _ -> ()
  | _ -> Alcotest.fail "must win");
  check Alcotest.int "winner write visible" 31
    (Address_space.get_int space ~addr:(Heap.cell_addr cell))

(* ---------------- replication ---------------- *)

let test_quorum_unanimous () =
  let eng = mk_engine () in
  let q =
    in_process eng (fun ctx ->
        Replicate.run_quorum ctx ~replicas:3 (fun rctx ->
            Engine.delay rctx 0.1;
            42))
  in
  check Alcotest.bool "majority value" true (q.Replicate.value = Some 42);
  (* The quorum decides as soon as 2 of 3 agree; the third replica may be
     eliminated before answering. *)
  check Alcotest.bool "at least a majority agrees" true (q.Replicate.agreeing >= 2);
  check Alcotest.int "no crashes before the decision" 0 q.Replicate.crashed

let test_quorum_decides_at_majority_not_slowest () =
  let eng = mk_engine () in
  let elapsed = ref 0. in
  let q =
    in_process eng (fun ctx ->
        let t0 = Engine.now_v ctx in
        let q =
          Replicate.run_quorum ctx ~replicas:3 (fun rctx ->
              (* Replica speeds differ; pid parity gives 1, 2 or 3 s. *)
              let me = Pid.to_int (Engine.self rctx) mod 3 in
              Engine.delay rctx (1. +. float_of_int me);
              7)
        in
        elapsed := Engine.now_v ctx -. t0;
        q)
  in
  check Alcotest.bool "value" true (q.Replicate.value = Some 7);
  check Alcotest.bool "decided at the 2nd replica, not the 3rd" true
    (!elapsed < 2.9)

let test_quorum_masks_minority_wrong_values () =
  let eng = mk_engine () in
  let counter = ref 0 in
  let q =
    in_process eng (fun ctx ->
        Replicate.run_quorum ctx ~replicas:5 (fun rctx ->
            incr counter;
            let n = !counter in
            Engine.delay rctx 0.1;
            (* Two replicas are corrupted. *)
            if n <= 2 then 666 else 42))
  in
  check Alcotest.bool "majority masks the corruption" true
    (q.Replicate.value = Some 42)

let test_quorum_no_majority () =
  let eng = mk_engine () in
  let counter = ref 0 in
  let q =
    in_process eng (fun ctx ->
        Replicate.run_quorum ctx ~replicas:4 (fun rctx ->
            incr counter;
            let n = !counter in
            Engine.delay rctx 0.1;
            n (* all four disagree *)))
  in
  check Alcotest.bool "no value" true (q.Replicate.value = None);
  check Alcotest.int "largest group is 1" 1 q.Replicate.agreeing

let test_quorum_survives_minority_crashes () =
  let eng = mk_engine () in
  let counter = ref 0 in
  let q =
    in_process eng (fun ctx ->
        Replicate.run_quorum ctx ~replicas:5 (fun rctx ->
            incr counter;
            let n = !counter in
            Engine.delay rctx 0.1;
            if n <= 2 then failwith "replica node down" else 11))
  in
  check Alcotest.bool "3 of 5 suffice" true (q.Replicate.value = Some 11);
  check Alcotest.int "crashes counted" 2 q.Replicate.crashed

let test_quorum_validation () =
  let eng = mk_engine () in
  let raised = ref false in
  ignore
    (in_process eng (fun ctx ->
         try ignore (Replicate.run_quorum ctx ~replicas:0 (fun _ -> 0))
         with Invalid_argument _ -> raised := true));
  check Alcotest.bool "replicas >= 1 enforced" true !raised

let test_replicated_alternative_in_a_block () =
  (* Section 6's composition: replication inside, fastest-first across. A
     fast alternative whose replicas disagree fails its majority and loses
     to a slower but consistent one. *)
  let eng = mk_engine () in
  let flaky_counter = ref 0 in
  let flaky =
    Alternative.make ~name:"flaky-fast" (fun rctx ->
        incr flaky_counter;
        (* Every replica answers differently: no quorum. *)
        let n = !flaky_counter in
        Engine.delay rctx 0.1;
        n)
  in
  let steady =
    Alternative.make ~name:"steady-slow" (fun rctx ->
        Engine.delay rctx 1.0;
        42)
  in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx
          [
            Replicate.alternative ~replicas:3 flaky;
            Replicate.alternative ~replicas:3 steady;
          ])
  in
  match r.Concurrent.outcome with
  | Alt_block.Selected { index = 1; value = 42 } -> ()
  | Alt_block.Selected { index; _ } -> Alcotest.failf "wrong winner %d" index
  | Alt_block.Block_failed m -> Alcotest.failf "block failed: %s" m

let test_replicated_alternative_name_and_guard () =
  let alt =
    Replicate.alternative ~replicas:3
      (Alternative.make ~name:"base" ~guard:(fun _ -> false) (fun _ -> 0))
  in
  check Alcotest.string "name decorated" "base(x3)" alt.Alternative.name;
  let eng = mk_engine () in
  let r = in_process eng (fun ctx -> Concurrent.run ctx [ alt ]) in
  match r.Concurrent.outcome with
  | Alt_block.Block_failed _ -> ()
  | _ -> Alcotest.fail "guard must still gate the replicated alternative"

let () =
  Alcotest.run "extensions"
    [
      ( "guard placement",
        [
          Alcotest.test_case "before-spawn skips closed" `Quick
            test_guard_before_spawn_skips_closed;
          Alcotest.test_case "before-spawn, all closed" `Quick
            test_guard_before_spawn_all_closed;
          Alcotest.test_case "at-sync runs body first" `Quick
            test_guard_at_sync_runs_body_first;
          Alcotest.test_case "redundant evaluation count" `Quick
            test_guard_redundant_consistent;
          Alcotest.test_case "in-child spawns all" `Quick test_guard_in_child_spawns_all;
        ] );
      ( "remote placement",
        [
          Alcotest.test_case "setup costs rfork" `Quick test_remote_setup_costs_rfork;
          Alcotest.test_case "state ships back" `Quick test_remote_state_ships_back;
          Alcotest.test_case "private pages" `Quick test_remote_children_have_private_pages;
          Alcotest.test_case "rfork overhead vs small work" `Quick
            test_remote_slower_than_local_for_small_work;
          Alcotest.test_case "on-demand: cheap setup" `Quick test_on_demand_setup_is_cheap;
          Alcotest.test_case "on-demand: faults pay network" `Quick
            test_on_demand_faults_pay_network_prices;
          Alcotest.test_case "on-demand: dirty-only return" `Quick
            test_on_demand_ships_back_only_dirty;
          Alcotest.test_case "on-demand: state ships back" `Quick
            test_on_demand_state_still_ships_back;
        ] );
      ( "replication",
        [
          Alcotest.test_case "unanimous quorum" `Quick test_quorum_unanimous;
          Alcotest.test_case "decides at majority" `Quick
            test_quorum_decides_at_majority_not_slowest;
          Alcotest.test_case "masks minority wrong values" `Quick
            test_quorum_masks_minority_wrong_values;
          Alcotest.test_case "no majority" `Quick test_quorum_no_majority;
          Alcotest.test_case "survives minority crashes" `Quick
            test_quorum_survives_minority_crashes;
          Alcotest.test_case "validation" `Quick test_quorum_validation;
          Alcotest.test_case "replicated alternative in a block" `Quick
            test_replicated_alternative_in_a_block;
          Alcotest.test_case "name and guard preserved" `Quick
            test_replicated_alternative_name_and_guard;
        ] );
    ]
