(* Tests for the simulation runtime: event queue, virtual time, processor
   sharing, IPC with predicate matching, multiple-worlds splitting, process
   elimination, fates. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

(* ---------------- Event_queue ---------------- *)

let test_eq_order () =
  let q = Event_queue.create () in
  Event_queue.push q ~time:3. "c";
  Event_queue.push q ~time:1. "a";
  Event_queue.push q ~time:2. "b";
  check Alcotest.int "size" 3 (Event_queue.size q);
  check Alcotest.(option (pair (float 0.) string)) "a first" (Some (1., "a"))
    (Event_queue.pop q);
  check Alcotest.(option (pair (float 0.) string)) "b second" (Some (2., "b"))
    (Event_queue.pop q);
  check Alcotest.(option (pair (float 0.) string)) "c third" (Some (3., "c"))
    (Event_queue.pop q);
  check Alcotest.bool "empty" true (Event_queue.pop q = None)

(* Regression for the pop leak: the heap array must not keep popped
   values reachable. Weak pointers observe exactly what the GC can still
   see — before the fix, pop left a live reference to every popped value
   in the vacated slot, so the weak slots survived a full major GC while
   the queue (and its capacity) stayed alive. *)
let test_eq_pop_clears_slots () =
  let q = Event_queue.create () in
  let weak = Weak.create 8 in
  for i = 0 to 7 do
    let v = ref (i * 11) in
    Weak.set weak i (Some v);
    Event_queue.push q ~time:(float_of_int i) v
  done;
  for _ = 0 to 7 do
    ignore (Event_queue.pop q)
  done;
  (* Keep the queue itself (and therefore its heap array) alive. *)
  Event_queue.push q ~time:99. (ref 0);
  Gc.full_major ();
  for i = 0 to 7 do
    if Weak.check weak i then
      Alcotest.failf "popped value %d is still referenced by the queue" i
  done;
  check Alcotest.int "queue still usable" 1 (Event_queue.size q)

let test_eq_clear_drops_references () =
  let q = Event_queue.create () in
  let weak = Weak.create 4 in
  for i = 0 to 3 do
    let v = ref i in
    Weak.set weak i (Some v);
    Event_queue.push q ~time:(float_of_int i) v
  done;
  Event_queue.clear q;
  Gc.full_major ();
  for i = 0 to 3 do
    if Weak.check weak i then
      Alcotest.failf "cleared value %d is still referenced by the queue" i
  done;
  (* The queue works after clear. *)
  Event_queue.push q ~time:1. (ref 42);
  check Alcotest.int "size after clear+push" 1 (Event_queue.size q)

let test_eq_fifo_ties () =
  let q = Event_queue.create () in
  for i = 0 to 9 do
    Event_queue.push q ~time:1. i
  done;
  for i = 0 to 9 do
    match Event_queue.pop q with
    | Some (_, v) -> check Alcotest.int "insertion order on ties" i v
    | None -> Alcotest.fail "queue exhausted early"
  done

let test_eq_peek_clear () =
  let q = Event_queue.create () in
  check Alcotest.(option (float 0.)) "peek empty" None (Event_queue.peek_time q);
  Event_queue.push q ~time:5. ();
  check Alcotest.(option (float 0.)) "peek" (Some 5.) (Event_queue.peek_time q);
  Event_queue.clear q;
  check Alcotest.bool "cleared" true (Event_queue.is_empty q)

let test_eq_nan () =
  let q = Event_queue.create () in
  Alcotest.check_raises "NaN rejected" (Invalid_argument "Event_queue.push: NaN time")
    (fun () -> Event_queue.push q ~time:Float.nan ())

let prop_eq_sorted =
  QCheck.Test.make ~name:"pop order is sorted by time" ~count:300
    QCheck.(list (float_range 0. 1000.))
    (fun times ->
      let q = Event_queue.create () in
      List.iter (fun t -> Event_queue.push q ~time:t ()) times;
      let rec drain last =
        match Event_queue.pop q with
        | None -> true
        | Some (t, ()) -> t >= last && drain t
      in
      drain neg_infinity)

(* ---------------- Engine basics ---------------- *)

let mk ?cores ?model ?(trace = false) () = Engine.create ?cores ?model ~trace ()

let test_delay_advances_clock () =
  let eng = mk () in
  let finish = ref 0. in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 1.5;
         Engine.delay ctx 0.5;
         finish := Engine.now_v ctx));
  Engine.run eng;
  check cf "2s elapsed" 2.0 !finish;
  check cf "engine clock" 2.0 (Engine.now eng)

let test_zero_delay () =
  let eng = mk () in
  let ran = ref false in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 0.;
         ran := true));
  Engine.run eng;
  check Alcotest.bool "zero delay completes" true !ran;
  check cf "no time passed" 0. (Engine.now eng)

let test_start_delay () =
  let eng = mk () in
  let t = ref 0. in
  ignore (Engine.spawn eng ~start_delay:3. (fun ctx -> t := Engine.now_v ctx));
  Engine.run eng;
  check cf "started late" 3. !t

let test_exit_statuses () =
  let eng = mk () in
  let ok = Engine.spawn eng (fun _ -> ()) in
  let failed = Engine.spawn eng (fun ctx -> Engine.abort ctx "nope") in
  let crashed = Engine.spawn eng (fun _ -> failwith "boom") in
  Engine.run eng;
  check Alcotest.bool "ok" true (Engine.status eng ok = Some Engine.Exited_ok);
  check Alcotest.bool "failed" true
    (Engine.status eng failed = Some (Engine.Exited_failed "nope"));
  (match Engine.status eng crashed with
  | Some (Engine.Crashed _) -> ()
  | _ -> Alcotest.fail "expected crash");
  check Alcotest.bool "none alive" true (Engine.live_count eng = 0)

let test_on_exit_watcher () =
  let eng = mk () in
  let seen = ref None in
  let pid = Engine.spawn eng (fun ctx -> Engine.delay ctx 1.) in
  Engine.on_exit eng pid (fun st -> seen := Some st);
  Engine.run eng;
  check Alcotest.bool "watcher fired" true (!seen = Some Engine.Exited_ok);
  (* Late registration fires immediately. *)
  let late = ref false in
  Engine.on_exit eng pid (fun _ -> late := true);
  check Alcotest.bool "late watcher immediate" true !late

let test_fresh_pids_and_spawn_pid () =
  let eng = mk () in
  let pids = Engine.fresh_pids eng 3 in
  check Alcotest.int "three pids" 3 (List.length pids);
  let p0 = List.hd pids in
  ignore (Engine.spawn eng ~pid:p0 (fun _ -> ()));
  Alcotest.check_raises "reuse rejected"
    (Invalid_argument "Engine.spawn: pid already in use") (fun () ->
      ignore (Engine.spawn eng ~pid:p0 (fun _ -> ())))

let test_run_for () =
  let eng = mk () in
  let steps = ref 0 in
  ignore
    (Engine.spawn eng (fun ctx ->
         for _ = 1 to 10 do
           Engine.delay ctx 1.;
           incr steps
         done));
  Engine.run_for eng 3.5;
  check Alcotest.int "stopped mid-run" 3 !steps;
  Engine.run eng;
  check Alcotest.int "resumable" 10 !steps

(* ---------------- CPU model ---------------- *)

let run_workers cores works =
  let eng = mk ~cores () in
  let finishes = Array.make (List.length works) 0. in
  List.iteri
    (fun i w ->
      ignore
        (Engine.spawn eng (fun ctx ->
             Engine.delay ctx w;
             finishes.(i) <- Engine.now_v ctx)))
    works;
  Engine.run eng;
  (eng, finishes)

let test_cpu_infinite () =
  let _, f = run_workers Engine.Infinite [ 1.; 1.; 1. ] in
  Array.iter (fun t -> check cf "all at 1s" 1. t) f

let test_cpu_single_core_sharing () =
  let _, f = run_workers (Engine.Cores 1) [ 1.; 1.; 1. ] in
  Array.iter (fun t -> check cf "PS: all at 3s" 3. t) f

let test_cpu_two_cores () =
  let _, f = run_workers (Engine.Cores 2) [ 1.; 1.; 1. ] in
  Array.iter (fun t -> check cf "3 tasks on 2 cores: 1.5s" 1.5 t) f

let test_cpu_unequal_work () =
  (* 1 core: works 1 and 2. Both run at rate 1/2 until t=2 (short done),
     then the long one runs alone: 2 + 1 = 3. *)
  let _, f = run_workers (Engine.Cores 1) [ 1.; 2. ] in
  check cf "short at 2" 2. f.(0);
  check cf "long at 3" 3. f.(1)

let test_cpu_time_accounting () =
  let eng, _ = run_workers (Engine.Cores 1) [ 1.; 1. ] in
  check cf "total cpu = total work" 2. (Engine.total_cpu_time eng)

let test_cpu_excess_cores () =
  let _, f = run_workers (Engine.Cores 8) [ 1.; 1. ] in
  Array.iter (fun t -> check cf "no contention" 1. t) f

(* ---------------- IPC ---------------- *)

let test_send_receive_payload () =
  let eng = mk () in
  let got = ref None in
  let recv =
    Engine.spawn eng (fun ctx ->
        let m = Engine.receive ctx () in
        got := Some m.Message.payload)
  in
  ignore (Engine.spawn eng (fun ctx -> Engine.send ctx recv (Payload.str "hi")));
  Engine.run eng;
  check Alcotest.bool "payload" true (!got = Some (Payload.Str "hi"))

let test_fifo_per_channel () =
  (* A big (slow) message followed by a small (fast) one must still arrive
     in send order: the channel is FIFO even when per-message costs would
     reorder deliveries. *)
  let eng = mk ~model:Cost_model.hp_9000_350 () in
  let order = ref [] in
  let recv =
    Engine.spawn eng (fun ctx ->
        for _ = 1 to 2 do
          let m = Engine.receive ctx () in
          (match m.Message.payload with
          | Payload.Pair (Payload.Int i, _) -> order := i :: !order
          | Payload.Int i -> order := i :: !order
          | _ -> ())
        done)
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.send ctx recv
           (Payload.Pair (Payload.int 1, Payload.Str (String.make 9000 'x')));
         Engine.send ctx recv (Payload.int 2)));
  Engine.run eng;
  check Alcotest.(list int) "send order preserved" [ 1; 2 ] (List.rev !order)

let test_fifo_ordering_ints () =
  let eng = mk () in
  let order = ref [] in
  let recv =
    Engine.spawn eng (fun ctx ->
        for _ = 1 to 5 do
          let m = Engine.receive ctx ~tag:"t" () in
          order := Payload.get_int m.Message.payload :: !order
        done)
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         for i = 1 to 5 do
           Engine.send ctx ~tag:"t" recv (Payload.int i)
         done));
  Engine.run eng;
  check Alcotest.(list int) "in order" [ 1; 2; 3; 4; 5 ] (List.rev !order)

let test_tag_filtering () =
  let eng = mk () in
  let got = ref [] in
  let recv =
    Engine.spawn eng (fun ctx ->
        let a = Engine.receive ctx ~tag:"b" () in
        let b = Engine.receive ctx ~tag:"a" () in
        got := [ a.Message.tag; b.Message.tag ])
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.send ctx ~tag:"a" recv Payload.Unit;
         Engine.send ctx ~tag:"b" recv Payload.Unit));
  Engine.run eng;
  check Alcotest.(list string) "tags honoured" [ "b"; "a" ] !got

let test_receive_timeout () =
  let eng = mk () in
  let got = ref (Some ()) in
  let woke = ref 0. in
  ignore
    (Engine.spawn eng (fun ctx ->
         (match Engine.receive_timeout ctx ~timeout:2.5 () with
         | None -> got := None
         | Some _ -> ());
         woke := Engine.now_v ctx));
  Engine.run eng;
  check Alcotest.bool "timed out" true (!got = None);
  check cf "at deadline" 2.5 !woke

let test_receive_timeout_delivery_wins () =
  let eng = mk () in
  let got = ref None in
  let recv =
    Engine.spawn eng (fun ctx ->
        match Engine.receive_timeout ctx ~timeout:10. () with
        | Some m -> got := Some m.Message.payload
        | None -> ())
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 1.;
         Engine.send ctx recv (Payload.int 9)));
  Engine.run eng;
  check Alcotest.bool "message won" true (!got = Some (Payload.Int 9))

let test_message_to_dead_pid_dropped () =
  let eng = mk () in
  let dead = Engine.spawn eng (fun _ -> ()) in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 1.;
         Engine.send ctx dead Payload.Unit));
  Engine.run eng;
  check Alcotest.int "no one left" 0 (Engine.live_count eng)

(* ---------------- Kill and doom ---------------- *)

let test_kill_parked () =
  let eng = mk () in
  let cleaned = ref false in
  let victim =
    Engine.spawn eng (fun ctx ->
        Fun.protect
          ~finally:(fun () -> cleaned := true)
          (fun () -> ignore (Engine.receive ctx ())))
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 1.;
         Engine.kill (Engine.engine ctx) victim ~reason:"test"));
  Engine.run eng;
  check Alcotest.bool "Fun.protect ran" true !cleaned;
  check Alcotest.bool "eliminated" true
    (Engine.status eng victim = Some (Engine.Eliminated "test"))

let test_kill_delaying () =
  let eng = mk () in
  let reached = ref false in
  let victim =
    Engine.spawn eng (fun ctx ->
        Engine.delay ctx 100.;
        reached := true)
  in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 1.;
         Engine.kill (Engine.engine ctx) victim ~reason:"cut"));
  Engine.run eng;
  check Alcotest.bool "body never resumed" false !reached;
  check cf "run ended at kill time" 1. (Engine.now eng)

let test_kill_embryo () =
  let eng = mk () in
  let ran = ref false in
  let victim = Engine.spawn eng ~start_delay:5. (fun _ -> ran := true) in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.kill (Engine.engine ctx) victim ~reason:"early"));
  Engine.run eng;
  check Alcotest.bool "embryo never ran" false !ran;
  check Alcotest.bool "eliminated" true
    (Engine.status eng victim = Some (Engine.Eliminated "early"))

let test_kill_dead_noop () =
  let eng = mk () in
  let pid = Engine.spawn eng (fun _ -> ()) in
  Engine.run eng;
  Engine.kill eng pid ~reason:"again";
  check Alcotest.bool "status unchanged" true
    (Engine.status eng pid = Some Engine.Exited_ok)

(* ---------------- Ivar ---------------- *)

let test_ivar_at_most_once () =
  let iv = Engine.Ivar.create () in
  check Alcotest.bool "first fill" true (Engine.Ivar.try_fill iv 1);
  check Alcotest.bool "second fill too late" false (Engine.Ivar.try_fill iv 2);
  check Alcotest.(option int) "first value kept" (Some 1) (Engine.Ivar.peek iv)

let test_ivar_read_blocks () =
  let eng = mk () in
  let iv = Engine.Ivar.create () in
  let got = ref 0 in
  let when_ = ref 0. in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Engine.Ivar.read ctx iv;
         when_ := Engine.now_v ctx));
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 2.;
         ignore (Engine.Ivar.try_fill iv 7)));
  Engine.run eng;
  check Alcotest.int "value" 7 !got;
  check cf "woke at fill" 2. !when_

let test_ivar_read_timeout () =
  let eng = mk () in
  let iv : int Engine.Ivar.t = Engine.Ivar.create () in
  let got = ref (Some 0) in
  ignore
    (Engine.spawn eng (fun ctx ->
         got := Engine.Ivar.read_timeout ctx iv ~timeout:1.5));
  Engine.run eng;
  check Alcotest.bool "timed out" true (!got = None);
  check cf "deadline respected" 1.5 (Engine.now eng)

(* ---------------- Worlds ---------------- *)

(* A speculative sender (assumes its own completion) sends to a receiver
   with no assumptions: the receiver splits; when the sender resolves, one
   world is eliminated. *)
let worlds_scenario ~sender_completes =
  let eng = Engine.create ~trace:true () in
  let log = ref [] in
  let spec = List.hd (Engine.fresh_pids eng 1) in
  let recv =
    Engine.spawn eng ~name:"recv" (fun ctx ->
        let m = Engine.receive ctx () in
        (* Wait for a later broadcast so both worlds live a while. *)
        let m2 = Engine.receive ctx () in
        log :=
          (Pid.to_int (Engine.self ctx), Payload.get_int m.Message.payload,
           Payload.get_int m2.Message.payload)
          :: !log)
  in
  ignore
    (Engine.spawn eng ~pid:spec ~name:"spec"
       ~predicate:(Predicate.make ~must_complete:[ spec ] ~must_fail:[])
       (fun ctx ->
         Engine.delay ctx 1.;
         Engine.send ctx recv (Payload.int 100);
         Engine.delay ctx 1.;
         if not sender_completes then Engine.abort ctx "speculation failed"));
  ignore
    (Engine.spawn eng ~name:"late" (fun ctx ->
         Engine.delay ctx 10.;
         Engine.send ctx recv (Payload.int 200)));
  Engine.run eng;
  (eng, recv, !log)

let test_worlds_split_created () =
  let eng, recv, _ = worlds_scenario ~sender_completes:true in
  let splits =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Split { original; _ } -> Pid.equal original recv
      | _ -> false)
  in
  check Alcotest.int "one split" 1 splits

let test_worlds_sender_completes () =
  let _, _, log = worlds_scenario ~sender_completes:true in
  (* Only the accepting world survives: it saw 100 then 200. *)
  match log with
  | [ (_, 100, 200) ] -> ()
  | _ -> Alcotest.failf "unexpected worlds outcome (%d entries)" (List.length log)

let test_worlds_sender_fails () =
  let _, _, log = worlds_scenario ~sender_completes:false in
  (* Only the rejecting world survives: it never saw 100; it saw 200 as its
     first message and then blocks — so no log entry with 100. *)
  check Alcotest.bool "accepting world died" true
    (not (List.exists (fun (_, first, _) -> first = 100) log))

let test_worlds_clone_replays_state () =
  (* The clone must reconstruct local OCaml state via replay: a counter
     incremented before the split must be visible in the surviving clone.
     In the clone's world the speculative message never existed, so its
     first receive consumes the later broadcast instead. *)
  let eng = mk () in
  let spec = List.hd (Engine.fresh_pids eng 1) in
  let recorded = ref [] in
  let recv =
    Engine.spawn eng ~name:"recv" (fun ctx ->
        let local = ref 0 in
        Engine.delay ctx 0.5;
        incr local;
        incr local;
        let m = Engine.receive ctx () in
        recorded := (!local, Payload.get_int m.Message.payload) :: !recorded)
  in
  ignore
    (Engine.spawn eng ~pid:spec
       ~predicate:(Predicate.make ~must_complete:[ spec ] ~must_fail:[])
       (fun ctx ->
         Engine.delay ctx 1.;
         Engine.send ctx recv (Payload.int 1);
         (* Fail only after the message has been delivered and split. *)
         Engine.delay ctx 1.;
         Engine.abort ctx "fails -> accepting world dies"));
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.delay ctx 5.;
         Engine.send ctx recv (Payload.int 2)));
  Engine.run eng;
  (* The accepting world recorded (2, 1) before dying; the rejecting clone
     must have replayed the increments and recorded (2, 2). *)
  check Alcotest.bool "clone replayed local state" true
    (List.mem (2, 2) !recorded);
  check Alcotest.bool "original saw speculative message" true
    (List.mem (2, 1) !recorded)

let test_oblivious_receiver_never_splits () =
  let eng = Engine.create ~trace:true () in
  let spec = List.hd (Engine.fresh_pids eng 1) in
  let got = ref 0 in
  let recv =
    Engine.spawn eng ~oblivious:true ~name:"service" (fun ctx ->
        let m = Engine.receive ctx () in
        got := Payload.get_int m.Message.payload)
  in
  ignore
    (Engine.spawn eng ~pid:spec
       ~predicate:(Predicate.make ~must_complete:[ spec ] ~must_fail:[])
       (fun ctx -> Engine.send ctx recv (Payload.int 5)));
  Engine.run eng;
  check Alcotest.int "accepted" 5 !got;
  check Alcotest.int "no splits" 0
    (Trace.count (Engine.trace eng) ~f:(function Trace.Split _ -> true | _ -> false))

let test_conflicting_message_ignored () =
  let eng = Engine.create ~trace:true () in
  let pids = Engine.fresh_pids eng 2 in
  let a = List.nth pids 0 and b = List.nth pids 1 in
  let got = ref None in
  (* Receiver already assumes b fails; a message from b (which assumes its
     own completion) must be ignored. *)
  let recv =
    Engine.spawn eng ~predicate:(Predicate.make ~must_complete:[] ~must_fail:[ b ])
      (fun ctx ->
        let m = Engine.receive_timeout ctx ~timeout:5. () in
        got := Option.map (fun m -> Payload.get_int m.Message.payload) m)
  in
  ignore
    (Engine.spawn eng ~pid:b
       ~predicate:(Predicate.make ~must_complete:[ b ] ~must_fail:[])
       (fun ctx -> Engine.send ctx recv (Payload.int 666)));
  ignore (Engine.spawn eng ~pid:a (fun _ -> ()));
  Engine.run eng;
  check Alcotest.bool "conflicting message never accepted" true (!got = None)

let test_deferred_fate_resolution () =
  (* A process that exits ok while assuming another completes gets its fate
     recorded only when that other resolves. *)
  let eng = Engine.create ~trace:true () in
  let pids = Engine.fresh_pids eng 1 in
  let dep = List.hd pids in
  let waiter =
    Engine.spawn eng
      ~predicate:(Predicate.make ~must_complete:[ dep ] ~must_fail:[])
      (fun ctx -> Engine.delay ctx 1.)
  in
  ignore (Engine.spawn eng ~pid:dep (fun ctx -> Engine.delay ctx 5.));
  Engine.run eng;
  check Alcotest.bool "waiter completed after dep" true
    (Fate_registry.fate (Engine.registry eng) waiter = Some Predicate.Completed);
  let deferred =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Fate_deferred p -> Pid.equal p waiter
      | _ -> false)
  in
  check Alcotest.int "fate was deferred first" 1 deferred

let test_dead_world_cascade () =
  (* c assumes b completes; b assumes a completes; a fails: both die. *)
  let eng = mk () in
  let pids = Engine.fresh_pids eng 3 in
  let a = List.nth pids 0 and b = List.nth pids 1 and c = List.nth pids 2 in
  ignore
    (Engine.spawn eng ~pid:c
       ~predicate:(Predicate.make ~must_complete:[ b ] ~must_fail:[])
       (fun ctx -> Engine.delay ctx 100.));
  ignore
    (Engine.spawn eng ~pid:b
       ~predicate:(Predicate.make ~must_complete:[ a ] ~must_fail:[])
       (fun ctx -> Engine.delay ctx 100.));
  ignore
    (Engine.spawn eng ~pid:a (fun ctx ->
         Engine.delay ctx 1.;
         Engine.abort ctx "a fails"));
  Engine.run eng;
  (match Engine.status eng b with
  | Some (Engine.Eliminated _) -> ()
  | _ -> Alcotest.fail "b should be eliminated");
  (match Engine.status eng c with
  | Some (Engine.Eliminated _) -> ()
  | _ -> Alcotest.fail "c should be eliminated");
  check cf "cascade happened at a's failure" 1. (Engine.now eng)

let test_on_resolution_hooks () =
  let eng = mk () in
  let pids = Engine.fresh_pids eng 1 in
  let dep = List.hd pids in
  let outcome_ok = ref None and outcome_dead = ref None in
  let certain_p =
    Engine.spawn eng
      ~predicate:(Predicate.make ~must_complete:[ dep ] ~must_fail:[])
      (fun ctx -> Engine.delay ctx 10.)
  in
  let dead_p =
    Engine.spawn eng
      ~predicate:(Predicate.make ~must_complete:[] ~must_fail:[ dep ])
      (fun ctx -> Engine.delay ctx 10.)
  in
  Engine.on_resolution eng certain_p (fun o -> outcome_ok := Some o);
  Engine.on_resolution eng dead_p (fun o -> outcome_dead := Some o);
  ignore (Engine.spawn eng ~pid:dep (fun ctx -> Engine.delay ctx 1.));
  Engine.run eng;
  check Alcotest.bool "certain hook" true (!outcome_ok = Some `Certain);
  check Alcotest.bool "dead hook" true (!outcome_dead = Some `Dead)

let test_random_bits_logged_deterministic () =
  let run_once () =
    let eng = Engine.create ~seed:123 ~trace:false () in
    let vals = ref [] in
    ignore
      (Engine.spawn eng (fun ctx ->
           for _ = 1 to 5 do
             vals := Engine.random_bits ctx :: !vals
           done));
    Engine.run eng;
    !vals
  in
  check Alcotest.bool "deterministic across runs" true (run_once () = run_once ())

let test_parked_pids_at_quiescence () =
  let eng = mk () in
  let stuck = Engine.spawn eng (fun ctx -> ignore (Engine.receive ctx ())) in
  Engine.run eng;
  check Alcotest.(list int) "stuck receiver visible"
    [ Pid.to_int stuck ]
    (List.map Pid.to_int (Engine.parked_pids eng))

let () =
  Alcotest.run "runtime"
    [
      ( "event_queue",
        [
          Alcotest.test_case "time order" `Quick test_eq_order;
          Alcotest.test_case "pop clears its slot (leak regression)" `Quick
            test_eq_pop_clears_slots;
          Alcotest.test_case "clear drops references" `Quick
            test_eq_clear_drops_references;
          Alcotest.test_case "fifo on ties" `Quick test_eq_fifo_ties;
          Alcotest.test_case "peek and clear" `Quick test_eq_peek_clear;
          Alcotest.test_case "NaN rejected" `Quick test_eq_nan;
          QCheck_alcotest.to_alcotest prop_eq_sorted;
        ] );
      ( "engine",
        [
          Alcotest.test_case "delay advances clock" `Quick test_delay_advances_clock;
          Alcotest.test_case "zero delay" `Quick test_zero_delay;
          Alcotest.test_case "start delay" `Quick test_start_delay;
          Alcotest.test_case "exit statuses" `Quick test_exit_statuses;
          Alcotest.test_case "on_exit watcher" `Quick test_on_exit_watcher;
          Alcotest.test_case "fresh pids / reuse" `Quick test_fresh_pids_and_spawn_pid;
          Alcotest.test_case "run_for" `Quick test_run_for;
        ] );
      ( "cpu",
        [
          Alcotest.test_case "infinite cores" `Quick test_cpu_infinite;
          Alcotest.test_case "single core sharing" `Quick test_cpu_single_core_sharing;
          Alcotest.test_case "two cores" `Quick test_cpu_two_cores;
          Alcotest.test_case "unequal work" `Quick test_cpu_unequal_work;
          Alcotest.test_case "cpu accounting" `Quick test_cpu_time_accounting;
          Alcotest.test_case "excess cores" `Quick test_cpu_excess_cores;
        ] );
      ( "ipc",
        [
          Alcotest.test_case "send/receive payload" `Quick test_send_receive_payload;
          Alcotest.test_case "fifo with mixed sizes" `Quick test_fifo_per_channel;
          Alcotest.test_case "fifo ordering" `Quick test_fifo_ordering_ints;
          Alcotest.test_case "tag filtering" `Quick test_tag_filtering;
          Alcotest.test_case "receive timeout" `Quick test_receive_timeout;
          Alcotest.test_case "delivery beats timeout" `Quick test_receive_timeout_delivery_wins;
          Alcotest.test_case "message to dead pid" `Quick test_message_to_dead_pid_dropped;
        ] );
      ( "kill",
        [
          Alcotest.test_case "kill parked runs cleanup" `Quick test_kill_parked;
          Alcotest.test_case "kill delaying" `Quick test_kill_delaying;
          Alcotest.test_case "kill embryo" `Quick test_kill_embryo;
          Alcotest.test_case "kill dead is noop" `Quick test_kill_dead_noop;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "at-most-once" `Quick test_ivar_at_most_once;
          Alcotest.test_case "read blocks until fill" `Quick test_ivar_read_blocks;
          Alcotest.test_case "read timeout" `Quick test_ivar_read_timeout;
        ] );
      ( "worlds",
        [
          Alcotest.test_case "split created" `Quick test_worlds_split_created;
          Alcotest.test_case "sender completes: accepting world survives" `Quick
            test_worlds_sender_completes;
          Alcotest.test_case "sender fails: rejecting world survives" `Quick
            test_worlds_sender_fails;
          Alcotest.test_case "clone replays local state" `Quick
            test_worlds_clone_replays_state;
          Alcotest.test_case "oblivious service never splits" `Quick
            test_oblivious_receiver_never_splits;
          Alcotest.test_case "conflicting message ignored" `Quick
            test_conflicting_message_ignored;
        ] );
      ( "fates",
        [
          Alcotest.test_case "deferred fate resolution" `Quick test_deferred_fate_resolution;
          Alcotest.test_case "dead-world cascade" `Quick test_dead_world_cascade;
          Alcotest.test_case "on_resolution hooks" `Quick test_on_resolution_hooks;
          Alcotest.test_case "random bits deterministic" `Quick
            test_random_bits_logged_deterministic;
          Alcotest.test_case "parked pids at quiescence" `Quick
            test_parked_pids_at_quiescence;
        ] );
    ]
