(* Edge-case tests: the "too late" backup under lost eliminations, chained
   worlds and fates, kills inside protocols, and parser round trips. *)

let check = Alcotest.check
let cf = Alcotest.float 1e-9

let in_process ?space eng f =
  let result = ref None in
  let pid =
    Engine.spawn eng ?space ~cloneable:false ~name:"edge-root" (fun ctx ->
        result := Some (f ctx))
  in
  if Option.is_some space then Engine.preserve_space eng pid;
  Engine.run eng;
  match !result with
  | Some r -> r
  | None -> Alcotest.fail "root did not complete"

(* ---------------- lost eliminations: the too-late backup ----------- *)

let test_no_elim_at_most_once () =
  (* Every kill message is lost: losers run to completion and must be
     refused at synchronisation. *)
  let eng = Engine.create ~trace:true () in
  let policy = { Concurrent.default_policy with elimination = Concurrent.No_elim } in
  let commits = ref 0 in
  let r =
    in_process eng (fun ctx ->
        Concurrent.run ctx ~policy
          (List.init 4 (fun i ->
               Alternative.make (fun cctx ->
                   Engine.delay cctx (1. +. float_of_int i);
                   incr commits;
                   i))))
  in
  Engine.run eng;
  (match r.Concurrent.outcome with
  | Alt_block.Selected { index = 0; value = 0 } -> ()
  | _ -> Alcotest.fail "fastest must win");
  (* All four bodies ran to completion (nobody was killed)... *)
  check Alcotest.int "every loser ran to completion" 4 !commits;
  (* ...but only one synchronised; the rest were told "too late". *)
  let late =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Sync_late _ -> true
      | _ -> false)
  in
  let won =
    Trace.count (Engine.trace eng) ~f:(function
      | Trace.Sync_won _ -> true
      | _ -> false)
  in
  check Alcotest.int "one winner" 1 won;
  check Alcotest.int "three refused" 3 late;
  check Alcotest.int "no processes left" 0 (Engine.live_count eng)

let test_no_elim_maximises_waste () =
  let run elimination =
    let eng = Engine.create ~trace:false () in
    let r =
      Concurrent.run_toplevel eng
        ~policy:{ Concurrent.default_policy with elimination }
        [ Alternative.fixed ~cost:1. 0; Alternative.fixed ~cost:10. 1 ]
    in
    r.Concurrent.wasted_cpu
  in
  let sync = run Concurrent.Sync_elim in
  let none = run Concurrent.No_elim in
  check cf "lost kills: loser burns its full 10s" 10. none;
  check Alcotest.bool "kills save most of it" true (sync < 2.)

let test_no_elim_state_stays_consistent () =
  (* Even with zombies running to completion, only the winner's memory is
     absorbed. *)
  let eng = Engine.create ~trace:false () in
  let space = Address_space.create (Engine.frame_store eng) (Engine.model eng) in
  let heap = Heap.create space in
  let cell = Heap.int_cell heap 0 in
  let policy = { Concurrent.default_policy with elimination = Concurrent.No_elim } in
  let r =
    Concurrent.run_toplevel eng ~policy ~space
      [
        Alternative.make (fun ctx -> Mem.set ctx cell 1; Engine.delay ctx 1.; 1);
        Alternative.make (fun ctx -> Mem.set ctx cell 2; Engine.delay ctx 9.; 2);
      ]
  in
  (match r.Concurrent.outcome with
  | Alt_block.Selected { value = 1; _ } -> ()
  | _ -> Alcotest.fail "fast alternative must win");
  check Alcotest.int "zombie's write never lands" 1
    (Address_space.get_int space ~addr:(Heap.cell_addr cell))

(* ---------------- chained speculation ---------------- *)

let test_second_order_worlds () =
  (* Two speculative senders message the same receiver: the receiver splits
     into (up to) four worlds; after both senders resolve, exactly one
     world survives with the consistent history. *)
  let eng = Engine.create ~trace:true () in
  let published = ref [] in
  let recv =
    Engine.spawn eng ~name:"recv" (fun ctx ->
        let local = ref [] in
        let rec loop () =
          match Engine.receive_timeout ctx ~timeout:30. () with
          | Some m ->
            local := Payload.get_int m.Message.payload :: !local;
            loop ()
          | None -> ()
        in
        loop ();
        published := List.sort compare !local :: !published)
  in
  let spawn_spec i ~succeeds =
    let pid = List.hd (Engine.fresh_pids eng 1) in
    ignore
      (Engine.spawn eng ~pid
         ~predicate:(Predicate.make ~must_complete:[ pid ] ~must_fail:[])
         (fun ctx ->
           Engine.delay ctx (0.1 *. float_of_int (i + 1));
           Engine.send ctx recv (Payload.int i);
           Engine.delay ctx 1.;
           if not succeeds then Engine.abort ctx "speculation failed"))
  in
  spawn_spec 0 ~succeeds:true;
  spawn_spec 1 ~succeeds:false;
  Engine.run eng;
  check Alcotest.bool "one surviving history: exactly [0]" true
    (!published = [ [ 0 ] ]);
  check Alcotest.bool "at least two splits happened" true
    (Trace.count (Engine.trace eng) ~f:(function Trace.Split _ -> true | _ -> false)
     >= 2)

let test_deferred_fate_chain () =
  (* A's completion is deferred on B, whose completion is deferred on C. *)
  let eng = Engine.create ~trace:false () in
  let pids = Engine.fresh_pids eng 2 in
  let b = List.nth pids 0 and c = List.nth pids 1 in
  let a =
    Engine.spawn eng ~predicate:(Predicate.make ~must_complete:[ b ] ~must_fail:[])
      (fun ctx -> Engine.delay ctx 0.1)
  in
  ignore
    (Engine.spawn eng ~pid:b
       ~predicate:(Predicate.make ~must_complete:[ c ] ~must_fail:[])
       (fun ctx -> Engine.delay ctx 0.2));
  ignore (Engine.spawn eng ~pid:c (fun ctx -> Engine.delay ctx 5.));
  Engine.run eng;
  let reg = Engine.registry eng in
  check Alcotest.bool "whole chain completed" true
    (Fate_registry.fate reg a = Some Predicate.Completed
    && Fate_registry.fate reg b = Some Predicate.Completed
    && Fate_registry.fate reg c = Some Predicate.Completed)

let test_kill_during_consensus () =
  (* A requester killed mid-protocol must not wedge the voters or leak the
     semaphore: a later requester can still acquire. *)
  let eng = Engine.create ~model:Cost_model.hp_9000_350 ~trace:false () in
  let m = Majority.create eng ~nodes:3 ~vote_delay:0.05 () in
  let got = ref false in
  let victim =
    Engine.spawn eng (fun ctx -> ignore (Majority.acquire ctx m ~reply_timeout:5.))
  in
  ignore
    (Engine.spawn eng ~start_delay:0.01 (fun ctx ->
         Engine.kill (Engine.engine ctx) victim ~reason:"mid-protocol"));
  ignore
    (Engine.spawn eng ~start_delay:1. (fun ctx ->
         got := Majority.acquire ctx m ~reply_timeout:5.;
         Majority.shutdown m));
  Engine.run eng;
  (* The dead requester may already hold grants from quick voters; the
     protocol's guarantee is at-most-one, and the voters stay live. If the
     victim was granted first, the second requester is refused — either
     way no wedge and no double grant. *)
  check Alcotest.bool "second requester got a definite answer" true
    (!got || Majority.owner m <> None)

let test_message_to_self () =
  let eng = Engine.create ~trace:false () in
  let got = ref 0 in
  ignore
    (Engine.spawn eng (fun ctx ->
         Engine.send ctx (Engine.self ctx) (Payload.int 9);
         let m = Engine.receive ctx () in
         got := Payload.get_int m.Message.payload));
  Engine.run eng;
  check Alcotest.int "self-send delivered" 9 !got

let test_guard_exception_is_failure () =
  let eng = Engine.create ~trace:false () in
  let r =
    Concurrent.run_toplevel eng
      [
        Alternative.make ~guard:(fun _ -> failwith "guard crashed") (fun _ -> 0);
        Alternative.fixed ~cost:1. 1;
      ]
  in
  match r.Concurrent.outcome with
  | Alt_block.Selected { value = 1; _ } -> ()
  | _ -> Alcotest.fail "crashing guard must not poison the block"

(* ---------------- parser round trip ---------------- *)

let rec printable = function
  (* Terms whose printed form reparses to the same tree (no operator atoms
     in odd positions). *)
  | Term.Var _ | Term.Int _ -> true
  | Term.Atom a -> a <> "" && a.[0] >= 'a' && a.[0] <= 'z'
  | Term.Compound (f, args) ->
    f <> "" && f.[0] >= 'a' && f.[0] <= 'z' && Array.for_all printable args

let gen_printable_term =
  let open QCheck.Gen in
  sized
    (fix (fun self n ->
         if n <= 0 then
           oneof
             [
               map (fun i -> Term.Var i) (int_range 0 3);
               map (fun i -> Term.Int i) (int_range 0 99);
               oneofl [ Term.Atom "foo"; Term.Atom "bar"; Term.Atom "baz" ];
             ]
         else
           frequency
             [
               (1, map (fun i -> Term.Int i) (int_range 0 99));
               (1, oneofl [ Term.Atom "foo"; Term.Atom "bar" ]);
               ( 3,
                 map2
                   (fun f args -> Term.compound f args)
                   (oneofl [ "f"; "g"; "h" ])
                   (list_size (int_range 1 3) (self (n / 2))) );
               ( 1,
                 map
                   (fun elems -> Term.of_list elems)
                   (list_size (int_range 0 3) (self (n / 2))) );
             ]))

let prop_print_parse_roundtrip =
  QCheck.Test.make ~name:"printing then parsing is the identity (modulo var names)"
    ~count:300
    (QCheck.make ~print:Term.to_string gen_printable_term)
    (fun t ->
      QCheck.assume (printable t);
      let printed = Term.to_string t in
      let reparsed, _ = Parser.query printed in
      (* Variable indices may be renumbered; compare after canonical
         renumbering of both sides. *)
      let canon term =
        let map = Hashtbl.create 8 in
        let next = ref 0 in
        let rec go = function
          | Term.Var v ->
            let v' =
              match Hashtbl.find_opt map v with
              | Some x -> x
              | None ->
                let x = !next in
                incr next;
                Hashtbl.replace map v x;
                x
            in
            Term.Var v'
          | (Term.Atom _ | Term.Int _) as t -> t
          | Term.Compound (f, args) -> Term.Compound (f, Array.map go args)
        in
        go term
      in
      Term.equal (canon t) (canon reparsed))

let () =
  Alcotest.run "edge"
    [
      ( "too-late backup",
        [
          Alcotest.test_case "lost kills: at most once" `Quick test_no_elim_at_most_once;
          Alcotest.test_case "lost kills: waste maximised" `Quick
            test_no_elim_maximises_waste;
          Alcotest.test_case "lost kills: state consistent" `Quick
            test_no_elim_state_stays_consistent;
        ] );
      ( "chained speculation",
        [
          Alcotest.test_case "second-order worlds" `Quick test_second_order_worlds;
          Alcotest.test_case "deferred fate chain" `Quick test_deferred_fate_chain;
          Alcotest.test_case "kill during consensus" `Quick test_kill_during_consensus;
          Alcotest.test_case "message to self" `Quick test_message_to_self;
          Alcotest.test_case "crashing guard" `Quick test_guard_exception_is_failure;
        ] );
      ( "parser",
        [ QCheck_alcotest.to_alcotest prop_print_parse_roundtrip ] );
    ]
