(* Tests for altlint: the static alternative-independence analyzer and
   the consensus-elision fast path its proofs license. *)

let check = Alcotest.check

let db_of src =
  let db = Database.with_prelude () in
  ignore (Database.add_program db src);
  db

let goal s = fst (Parser.query s)

let verdict_name f = Lint.verdict_name f.Lint.verdict

let find db s = Lint.check_goal db (goal s)

(* ---------------- OR-branch analysis ---------------- *)

let plan_program =
  {|
  burn(0).
  burn(N) :- N > 0, M is N - 1, burn(M).
  plan(rail(X)) :- burn(4000), member(X, []), fail.
  plan(ferry(X)) :- burn(6000), member(X, []), fail.
  plan(fly(direct)) :- burn(150).
|}

let test_static_fail_proof () =
  let f = find (db_of plan_program) "plan(P)" in
  check Alcotest.string "plan(P) proven" "independent" (verdict_name f);
  check Alcotest.int "three branches" 3 f.Lint.branches

let test_head_indexing () =
  let db = db_of "color(red). color(green). color(blue)." in
  let f = find db "color(red)" in
  check Alcotest.string "instantiated goal discriminates" "independent"
    (verdict_name f);
  check Alcotest.int "one unifying branch" 1 f.Lint.branches;
  (* No clause head unifies at all: vacuously exclusive. *)
  let f = find db "color(purple)" in
  check Alcotest.string "vacuous" "independent" (verdict_name f)

let test_two_facts_conflict () =
  let f = find (db_of "color(red). color(green). color(blue).") "color(X)" in
  check Alcotest.string "two unifying facts overlap" "conflicting"
    (verdict_name f);
  check Alcotest.bool "witness names the clauses" true
    (String.length (Lint.verdict_detail f.Lint.verdict) > 0)

let test_complementary_guards () =
  let db =
    db_of
      {|
  classify(X, small) :- X < 10, X >= 0.
  classify(X, big) :- X >= 10.
|}
  in
  let f = find db "classify(N, W)" in
  check Alcotest.string "X<10 vs X>=10 complement" "independent"
    (verdict_name f);
  check Alcotest.int "two branches" 2 f.Lint.branches

let test_recursive_unknown () =
  (* Recursive generators genuinely can succeed more than once: the
     analyzer must refuse to certify them. *)
  List.iter
    (fun g ->
      let f = find (Database.with_prelude ()) g in
      check Alcotest.string (g ^ " stays unknown") "unknown" (verdict_name f))
    [ "member(X, [a,b,c])"; "between(1, 5, X)" ]

let test_undefined_unknown () =
  let f = find (Database.with_prelude ()) "no_such_predicate(X)" in
  check Alcotest.string "undefined predicate" "unknown" (verdict_name f)

let test_proven_exclusive () =
  check Alcotest.bool "plan(P) exclusive" true
    (Lint.proven_exclusive (db_of plan_program) (goal "plan(P)"));
  check Alcotest.bool "member not exclusive" false
    (Lint.proven_exclusive (Database.with_prelude ()) (goal "member(X, [a,b])"))

(* ---------------- footprint analysis ---------------- *)

let alt ?footprint v = Alternative.make ?footprint (fun _ -> v)

let fp_verdict alts =
  Lint.verdict_name (Lint.check_footprints ~label:"blk" alts).Lint.verdict

let test_footprints_disjoint () =
  let a = alt ~footprint:(Alternative.footprint ~writes:[ (0, 64) ] ()) 1 in
  let b = alt ~footprint:(Alternative.footprint ~writes:[ (64, 64) ] ()) 2 in
  check Alcotest.string "disjoint ranges" "independent" (fp_verdict [ a; b ])

let test_footprints_overlap () =
  let a = alt ~footprint:(Alternative.footprint ~writes:[ (0, 100) ] ()) 1 in
  let b = alt ~footprint:(Alternative.footprint ~writes:[ (99, 8) ] ()) 2 in
  check Alcotest.string "overlapping ranges" "conflicting" (fp_verdict [ a; b ])

let test_footprints_source () =
  let a = alt ~footprint:(Alternative.footprint ~writes_source:true ()) 1 in
  let b = alt ~footprint:(Alternative.footprint ~reads_source:true ()) 2 in
  check Alcotest.string "both touch the source" "conflicting"
    (fp_verdict [ a; b ])

let test_footprints_endpoint () =
  let a = alt ~footprint:(Alternative.footprint ~endpoints:[ "db" ] ()) 1 in
  let b = alt ~footprint:(Alternative.footprint ~endpoints:[ "db" ] ()) 2 in
  check Alcotest.string "shared endpoint" "conflicting" (fp_verdict [ a; b ])

let test_footprints_undeclared () =
  let a = alt ~footprint:Alternative.pure 1 in
  let b = alt 2 in
  check Alcotest.string "undeclared is unknown" "unknown" (fp_verdict [ a; b ]);
  check Alcotest.string "all pure is independent" "independent"
    (fp_verdict [ alt ~footprint:Alternative.pure 1; alt ~footprint:Alternative.pure 2 ])

(* ---------------- exit codes and JSON ---------------- *)

let test_exit_codes () =
  let ind = find (db_of plan_program) "plan(P)" in
  let unk = find (Database.with_prelude ()) "member(X, [a])" in
  let con = find (db_of "p(1). p(2).") "p(X)" in
  check Alcotest.int "all independent" 0 (Lint.exit_code [ ind ]);
  check Alcotest.int "unknown" Report.code_lint_unknown
    (Lint.exit_code [ ind; unk ]);
  check Alcotest.int "conflict dominates" Report.code_lint_conflict
    (Lint.exit_code [ ind; unk; con ]);
  check Alcotest.int "empty is clean" 0 (Lint.exit_code [])

let test_json_shape () =
  let j = Lint.finding_to_json (find (db_of plan_program) "plan(P)") in
  List.iter
    (fun key ->
      check Alcotest.bool (Printf.sprintf "json has %s" key) true
        (let re = Printf.sprintf "\"%s\"" key in
         let rec contains i =
           i + String.length re <= String.length j
           && (String.sub j i (String.length re) = re || contains (i + 1))
         in
         contains 0))
    [ "target"; "kind"; "branches"; "verdict"; "detail" ]

(* ---------------- consensus-elision fast path ---------------- *)

let consensus_policy =
  {
    Concurrent.default_policy with
    Concurrent.sync =
      Concurrent.Consensus
        { nodes = 3; crashed = []; vote_delay = 0.0002; reply_timeout = 0.05 };
  }

let race_block ~exclusive =
  let eng = Engine.create ~seed:7 () in
  let alts =
    [
      Alternative.make ~name:"fails" (fun ctx ->
          Engine.delay ctx 0.001;
          raise (Alternative.Failed "no"));
      Alternative.make ~name:"wins" (fun ctx ->
          Engine.delay ctx 0.002;
          42);
    ]
  in
  Concurrent.run_toplevel eng ~policy:consensus_policy ~exclusive alts

let test_elision_same_winner () =
  let voted = race_block ~exclusive:false in
  let elided = race_block ~exclusive:true in
  (match (voted.Concurrent.outcome, elided.Concurrent.outcome) with
  | ( Alt_block.Selected { index = i1; value = v1 },
      Alt_block.Selected { index = i2; value = v2 } ) ->
    check Alcotest.int "same winner index" i1 i2;
    check Alcotest.int "same value" v1 v2
  | _ -> Alcotest.fail "expected Selected from both paths");
  check Alcotest.bool "consensus path votes" true
    (voted.Concurrent.sync_messages > 0);
  check Alcotest.int "elided path sends no votes" 0
    elided.Concurrent.sync_messages;
  check Alcotest.bool "elision saves synchronisation time" true
    (elided.Concurrent.elapsed <= voted.Concurrent.elapsed)

let test_or_parallel_elision () =
  let db = db_of plan_program in
  let g = goal "plan(P)" in
  let exclusive = Lint.proven_exclusive db g in
  check Alcotest.bool "lint licenses the fast path" true exclusive;
  let voted = Or_parallel.solve_sim ~policy:consensus_policy db g in
  let elided = Or_parallel.solve_sim ~policy:consensus_policy ~exclusive db g in
  check
    Alcotest.(option int)
    "same winning branch" voted.Or_parallel.winner_branch
    elided.Or_parallel.winner_branch;
  check Alcotest.bool "same solution" true
    (voted.Or_parallel.first_solution = elided.Or_parallel.first_solution);
  check Alcotest.bool "elision is not slower" true
    (elided.Or_parallel.par_time <= voted.Or_parallel.par_time)

let () =
  Alcotest.run "lint"
    [
      ( "or-branches",
        [
          Alcotest.test_case "static-fail proof" `Quick test_static_fail_proof;
          Alcotest.test_case "head indexing" `Quick test_head_indexing;
          Alcotest.test_case "two facts conflict" `Quick test_two_facts_conflict;
          Alcotest.test_case "complementary guards" `Quick
            test_complementary_guards;
          Alcotest.test_case "recursive stays unknown" `Quick
            test_recursive_unknown;
          Alcotest.test_case "undefined stays unknown" `Quick
            test_undefined_unknown;
          Alcotest.test_case "proven_exclusive" `Quick test_proven_exclusive;
        ] );
      ( "footprints",
        [
          Alcotest.test_case "disjoint" `Quick test_footprints_disjoint;
          Alcotest.test_case "overlap" `Quick test_footprints_overlap;
          Alcotest.test_case "source" `Quick test_footprints_source;
          Alcotest.test_case "endpoint" `Quick test_footprints_endpoint;
          Alcotest.test_case "undeclared" `Quick test_footprints_undeclared;
        ] );
      ( "reporting",
        [
          Alcotest.test_case "exit codes" `Quick test_exit_codes;
          Alcotest.test_case "json shape" `Quick test_json_shape;
        ] );
      ( "fast-path",
        [
          Alcotest.test_case "same winner, no votes" `Quick
            test_elision_same_winner;
          Alcotest.test_case "or-parallel elision" `Quick
            test_or_parallel_elision;
        ] );
    ]
